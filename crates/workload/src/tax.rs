//! Datacenter and microservice memory tax (§2.3).
//!
//! Beyond workload memory, a fleet host spends memory on infrastructure:
//! the *datacenter tax* (software deployment, profiling, logging — 13%
//! of total memory, uniform across workloads) and the *microservice tax*
//! (routing, proxying, service discovery sidecars — 7% on average).
//! Both have relaxed performance SLAs, which made them TMO's first
//! offloading target.

use tmo_sim::{ByteSize, SimDuration};

use crate::profile::AppProfile;
use crate::temperature::TemperatureClass;

/// Fraction of a server's memory consumed by the datacenter tax
/// (Figure 3).
pub const DATACENTER_TAX_FRACTION: f64 = 0.13;

/// Average fraction consumed by the microservice tax (Figure 3).
pub const MICROSERVICE_TAX_FRACTION: f64 = 0.07;

/// The datacenter-tax sidecar profile for a server with `server_mem`
/// total memory. Tax memory is mostly idle bookkeeping: 60% of it is
/// cold past 5 minutes.
pub fn datacenter_tax(server_mem: ByteSize) -> AppProfile {
    AppProfile::new(
        "Datacenter Tax",
        server_mem.mul_f64(DATACENTER_TAX_FRACTION),
        0.40, // Figure 4: tax skews file-backed (binaries, logs)
        3.0,
        vec![
            TemperatureClass::new(0.25, SimDuration::from_secs(12)),
            TemperatureClass::new(0.15, SimDuration::from_secs(150)),
            TemperatureClass::new(0.60, SimDuration::from_hours(12)),
        ],
        4,
    )
}

/// The microservice-tax sidecar profile (routing/proxy): busier than the
/// datacenter tax but still half cold.
pub fn microservice_tax(server_mem: ByteSize) -> AppProfile {
    AppProfile::new(
        "Microservice Tax",
        server_mem.mul_f64(MICROSERVICE_TAX_FRACTION),
        0.75, // Figure 4: proxy state is mostly anonymous
        3.0,
        vec![
            TemperatureClass::new(0.35, SimDuration::from_secs(12)),
            TemperatureClass::new(0.15, SimDuration::from_secs(150)),
            TemperatureClass::new(0.50, SimDuration::from_hours(12)),
        ],
        4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tax_fractions_match_figure3() {
        // Figure 3: 13% + 7% = 20% total memory tax.
        assert!((DATACENTER_TAX_FRACTION + MICROSERVICE_TAX_FRACTION - 0.20).abs() < 1e-9);
    }

    #[test]
    fn tax_sizes_scale_with_server_memory() {
        let server = ByteSize::from_gib(64);
        let dc = datacenter_tax(server);
        let micro = microservice_tax(server);
        assert_eq!(dc.mem_total, server.mul_f64(0.13));
        assert_eq!(micro.mem_total, server.mul_f64(0.07));
    }

    #[test]
    fn tax_is_mostly_cold() {
        let dc = datacenter_tax(ByteSize::from_gib(64));
        assert!(
            dc.cold_fraction() >= 0.5,
            "dc tax cold {}",
            dc.cold_fraction()
        );
        let micro = microservice_tax(ByteSize::from_gib(64));
        assert!(micro.cold_fraction() >= 0.4);
    }

    #[test]
    fn tax_anon_split_differs() {
        // Datacenter tax skews file-backed; microservice tax anonymous.
        let server = ByteSize::from_gib(64);
        assert!(datacenter_tax(server).anon_fraction < 0.5);
        assert!(microservice_tax(server).anon_fraction > 0.5);
    }
}
