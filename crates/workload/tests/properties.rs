//! Property-based tests of the workload generators.

use proptest::prelude::*;
use tmo_sim::{DetRng, SimDuration};
use tmo_workload::temperature::coldness_classes;
use tmo_workload::{AccessPlanner, TemperatureClass, WebServerConfig, WebServerModel};

proptest! {
    #[test]
    fn planner_assigns_every_page_exactly_once(
        fracs in prop::collection::vec(0.01f64..1.0, 1..6),
        total in 1u64..100_000,
    ) {
        let sum: f64 = fracs.iter().sum();
        let classes: Vec<TemperatureClass> = fracs
            .iter()
            .map(|f| TemperatureClass::new(f / sum, SimDuration::from_secs(10)))
            .collect();
        let planner = AccessPlanner::new(classes, total);
        prop_assert_eq!(planner.total_pages(), total);
    }

    #[test]
    fn plan_counts_track_expected_rate(
        reaccess_secs in 1u64..600,
        pages in 1_000u64..100_000,
        seed in any::<u64>(),
    ) {
        let planner = AccessPlanner::new(
            vec![TemperatureClass::new(1.0, SimDuration::from_secs(reaccess_secs))],
            pages,
        );
        let mut rng = DetRng::seed_from_u64(seed);
        let dt = SimDuration::from_secs(1);
        let n = 100;
        let total: u64 = (0..n).map(|_| planner.plan(dt, &mut rng)[0]).sum();
        let expected = planner.expected_rate() * n as f64;
        // Poisson mean over 100 samples: within 6 sigma.
        let sigma = expected.sqrt().max(1.0);
        prop_assert!(
            (total as f64 - expected).abs() < 6.0 * sigma + 1.0,
            "total {total} vs expected {expected}"
        );
    }

    #[test]
    fn coldness_fractions_round_trip(
        a in 0.05f64..0.7,
        b in 0.0f64..0.2,
        c in 0.0f64..0.2,
    ) {
        let cold = 1.0 - a - b - c;
        prop_assume!(cold > 0.01);
        let classes = coldness_classes(a, b, c, cold);
        let sum: f64 = classes.iter().map(|cl| cl.fraction).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // The cold class never looks hot within five minutes.
        let five = SimDuration::from_mins(5);
        let coldest = classes.last().expect("has classes");
        prop_assert!(coldest.touch_probability(five) < 0.05);
    }

    #[test]
    fn web_rps_always_within_bounds(
        stalls in prop::collection::vec(0u64..200, 1..300),
        free in 0.0f64..1.0,
    ) {
        let mut web = WebServerModel::new(WebServerConfig::default());
        let max = web.config().max_rps;
        for ms in stalls {
            web.observe(SimDuration::from_millis(ms), free);
            prop_assert!(web.rps() > 0.0);
            prop_assert!(web.rps() <= max + 1e-9);
        }
    }

    #[test]
    fn web_is_deterministic_given_the_same_inputs(
        stalls in prop::collection::vec(0u64..100, 1..100),
    ) {
        let run = || {
            let mut web = WebServerModel::new(WebServerConfig::default());
            for ms in &stalls {
                web.observe(SimDuration::from_millis(*ms), 0.5);
            }
            web.rps()
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #[test]
    fn plan_into_matches_scalar_plan(
        fracs in prop::collection::vec(0.01f64..1.0, 1..6),
        total in 1u64..100_000,
        seed in any::<u64>(),
        dt_ms in 1u64..5_000,
    ) {
        // The buffer-reusing batched plan must produce the same counts
        // AND consume the generator identically to the allocating form,
        // so a simulation can swap between them without perturbing any
        // downstream draw.
        let sum: f64 = fracs.iter().sum();
        let classes: Vec<TemperatureClass> = fracs
            .iter()
            .map(|f| TemperatureClass::new(f / sum, SimDuration::from_secs(10)))
            .collect();
        let planner = AccessPlanner::new(classes, total);
        let dt = SimDuration::from_millis(dt_ms);
        let mut rng_scalar = DetRng::seed_from_u64(seed);
        let mut rng_batched = DetRng::seed_from_u64(seed);
        let scalar = planner.plan(dt, &mut rng_scalar);
        let mut batched = vec![9999]; // plan_into must clear stale contents
        planner.plan_into(dt, &mut rng_batched, &mut batched);
        prop_assert_eq!(&scalar, &batched);
        prop_assert_eq!(rng_scalar.next_u64(), rng_batched.next_u64());
    }

    #[test]
    fn planner_conserves_pages_per_class(
        fracs in prop::collection::vec(0.01f64..1.0, 1..8),
        total in 0u64..1_000_000,
    ) {
        // Every page lands in exactly one class: per-class counts sum
        // to the requested total (the remainder rule tops up the last
        // class), and no class exceeds the total.
        let sum: f64 = fracs.iter().sum();
        let classes: Vec<TemperatureClass> = fracs
            .iter()
            .map(|f| TemperatureClass::new(f / sum, SimDuration::from_secs(60)))
            .collect();
        let planner = AccessPlanner::new(classes, total);
        let per_class = planner.pages_per_class();
        prop_assert_eq!(per_class.iter().sum::<u64>(), total);
        prop_assert_eq!(planner.total_pages(), total);
        for &pages in per_class {
            prop_assert!(pages <= total);
        }
    }

    #[test]
    fn sample_batch_draws_like_a_scalar_below_loop(
        len in 1usize..200,
        count in 0u64..300,
        seed in any::<u64>(),
    ) {
        // sample_batch_into hoists the rejection threshold but must
        // keep the draw sequence of one `rng.below` per sample.
        let items: Vec<u64> = (0..len as u64).collect();
        let mut rng_batch = DetRng::seed_from_u64(seed);
        let mut out = Vec::new();
        AccessPlanner::sample_batch_into(&items, count, &mut rng_batch, &mut out);

        let mut rng_scalar = DetRng::seed_from_u64(seed);
        let scalar: Vec<u64> = (0..count)
            .map(|_| items[rng_scalar.below(items.len() as u64) as usize])
            .collect();
        prop_assert_eq!(&out, &scalar);
        prop_assert_eq!(rng_batch.next_u64(), rng_scalar.next_u64());
    }
}
