//! Property tests for the shard-chunked fleet runner.
//!
//! Two contracts underwrite the `--jobs N` bit-identity guarantee:
//!
//! 1. [`shard_plan`] is an **exact cover** of `0..hosts` — contiguous,
//!    ascending, no gaps, no overlaps — for *arbitrary* fleet sizes,
//!    worker counts, and oversubscription factors. The deterministic
//!    merge concatenates shard results in shard order; any hole or
//!    overlap would silently drop or duplicate hosts.
//! 2. The shard-chunked execution path (`run_seeded_sharded`, arenas,
//!    work-stealing claim order) produces output identical to the plain
//!    per-host path (`run_seeded`) for any worker count.

use proptest::prelude::*;

use tmo::runner::{shard_plan, FleetRunner, MIN_SHARD_HOSTS, OVERSUBSCRIBE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn shard_plan_is_an_exact_cover_of_the_fleet(
        hosts in 0usize..5000,
        workers in 0usize..64,
        oversubscribe in 0usize..12,
    ) {
        let shards = shard_plan(hosts, workers, oversubscribe);
        if hosts == 0 {
            prop_assert!(shards.is_empty(), "empty fleet must have no shards");
            return Ok(());
        }
        prop_assert!(!shards.is_empty(), "non-empty fleet must be sharded");
        // Contiguous ascending cover: each shard starts where the
        // previous one ended, first at 0, last at `hosts`.
        let mut next = 0usize;
        for shard in &shards {
            prop_assert_eq!(shard.start, next, "gap or overlap at host {}", next);
            prop_assert!(shard.start < shard.end, "empty shard {:?}", shard);
            next = shard.end;
        }
        prop_assert_eq!(next, hosts, "cover must end exactly at the fleet size");
        // Equal chunks except the tail.
        let chunk = shards[0].len();
        for shard in &shards[..shards.len() - 1] {
            prop_assert_eq!(shard.len(), chunk, "only the last shard may be short");
        }
        prop_assert!(shards[shards.len() - 1].len() <= chunk);
        // The plan never produces more shards than claim slots: chunk is
        // at least ceil(hosts / (workers * oversubscribe)).
        let slots = workers.max(1).saturating_mul(oversubscribe.max(1));
        prop_assert!(
            shards.len() <= slots,
            "{} shards for {} slots (hosts={}, workers={})",
            shards.len(), slots, hosts, workers
        );
    }

    #[test]
    fn shard_plan_respects_the_small_shard_floor(
        hosts in 1usize..5000,
        workers in 1usize..64,
    ) {
        let shards = shard_plan(hosts, workers, OVERSUBSCRIBE);
        let fair = hosts.div_ceil(workers);
        let floor = MIN_SHARD_HOSTS.min(fair).max(1);
        // Every shard but the tail carries at least the floor, so tiny
        // shards never dominate claim/merge overhead — but small fleets
        // still split down to a worker's fair share.
        for shard in &shards[..shards.len() - 1] {
            prop_assert!(
                shard.len() >= floor,
                "shard {:?} below floor {} (hosts={}, workers={})",
                shard, floor, hosts, workers
            );
        }
    }
}

proptest! {
    // Each case runs two fleets; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_path_is_identical_to_the_per_host_path(
        hosts in 1usize..300,
        jobs in 1usize..9,
        seed in any::<u64>(),
    ) {
        // The old contract: one closure call per host, no arena. The
        // host function must be a pure function of (seed, index), so a
        // keyed mix of both stands in for a simulation.
        let mix = |index: usize, host_seed: u64| {
            let mut x = host_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            (index, x)
        };
        let plain = FleetRunner::sequential().run_seeded(seed, hosts, |host| {
            mix(host.index, host.seed)
        });
        // `exact` bypasses the machine clamp: the multi-worker shard
        // claim/merge path runs even on a single-core machine.
        let sharded = FleetRunner::exact(jobs).run_seeded_sharded(seed, hosts, |host, arena| {
            // Exercise the arena plumbing; parked scratch must not
            // influence results.
            let scratch = arena.take_scratch();
            let out = mix(host.index, host.seed);
            arena.put_scratch(scratch);
            out
        });
        prop_assert_eq!(plain, sharded);
    }
}
