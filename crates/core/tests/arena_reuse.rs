//! Invariant suite: a worker's shard arena is a pure capacity carrier.
//!
//! Host `i` simulated alone on a fresh arena and host `i` simulated
//! mid-shard — behind other hosts whose retired scratch it adopts —
//! must produce bit-identical outcomes. The same must hold when the
//! schedule injects container crash churn and mid-run host panics: a
//! lost scratch (the panicking host dies holding it) may degrade buffer
//! reuse, but never results.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tmo::fleet::{host_savings, HostSavings};
use tmo::prelude::*;
use tmo::runner::{FleetRunner, HostCtx, ShardArena};

/// What one host reports: savings plus final sim clock — enough bits
/// that any divergence in the access/reclaim/fault path shows up.
type Fingerprint = (HostSavings, SimTime);

/// One small Feed host, optionally under fault injection, built on an
/// adopted scratch and retiring it afterwards. Panics mid-run when the
/// host's fault schedule says so.
fn run_host(
    seed: u64,
    faults: Option<FaultConfig>,
    scratch: MachineScratch,
) -> (Fingerprint, MachineScratch) {
    let dram = ByteSize::from_mib(64);
    let mut machine = Machine::with_scratch(
        MachineConfig {
            dram,
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            seed,
            faults,
            ..MachineConfig::default()
        },
        scratch,
    );
    let app = machine.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(24)));
    for _ in 0..12 {
        machine.tick();
    }
    machine.reclaim(app, ByteSize::from_mib(6));
    for _ in 0..4 {
        machine.tick();
    }
    let fp = (host_savings(&machine), machine.now());
    (fp, machine.into_scratch())
}

/// The fleet closure shape every test uses: thread the arena through.
fn fleet_host(
    faults: Option<FaultConfig>,
) -> impl Fn(HostCtx, &mut ShardArena) -> Fingerprint + Sync {
    move |host, arena| {
        let (fp, scratch) = run_host(host.seed, faults, arena.take_scratch());
        arena.put_scratch(scratch);
        fp
    }
}

/// Runs host `i` of `experiment_seed` in isolation: fresh arena, no
/// neighbours, exactly what a one-host fleet would do.
fn solo(experiment_seed: u64, index: usize, faults: Option<FaultConfig>) -> Fingerprint {
    let mut arena = ShardArena::new();
    let ctx = HostCtx {
        index,
        seed: FleetRunner::host_seed(experiment_seed, index),
    };
    fleet_host(faults)(ctx, &mut arena)
}

/// A crash-churn schedule: full chaos with host panics disabled, so
/// every host completes but containers crash, devices die, and signals
/// go stale along the way.
fn crash_churn() -> FaultConfig {
    FaultConfig {
        panic_per_min: 0.0,
        crash_per_min: 1.0,
        ..FaultConfig::chaos(1.0)
    }
}

/// A panic-heavy schedule: enough mid-run host panics that a small
/// fleet reliably contains both casualties and survivors.
fn panicky() -> FaultConfig {
    FaultConfig {
        panic_per_min: 2.0,
        ..FaultConfig::chaos(1.0)
    }
}

#[test]
fn host_alone_matches_host_in_shard() {
    const SEED: u64 = 4242;
    const HOSTS: usize = 40;
    let alone: Vec<Fingerprint> = (0..HOSTS).map(|i| solo(SEED, i, None)).collect();
    // exact() bypasses the machine clamp, so the multi-worker shard
    // merge really runs even on a single-core machine.
    for workers in [1, 2, 4] {
        let fleet = FleetRunner::exact(workers).run_seeded_sharded(SEED, HOSTS, fleet_host(None));
        assert_eq!(alone, fleet, "workers={workers} diverged from solo runs");
    }
}

#[test]
fn adopted_scratch_from_any_host_changes_nothing() {
    const SEED: u64 = 99;
    let fresh = solo(SEED, 7, None);
    // Retire scratch from a *different* host (different seed, different
    // buffer sizes at retirement) and make host 7 adopt it.
    for donor in [0usize, 3, 11] {
        let (_, dirty) = run_host(
            FleetRunner::host_seed(SEED ^ 0xdead_beef, donor),
            Some(crash_churn()),
            MachineScratch::default(),
        );
        let (adopted, _) = run_host(FleetRunner::host_seed(SEED, 7), None, dirty);
        assert_eq!(fresh, adopted, "scratch from donor {donor} leaked state");
    }
}

#[test]
fn crash_churn_schedule_is_arena_invariant() {
    const SEED: u64 = 1300;
    const HOSTS: usize = 24;
    let faults = Some(crash_churn());
    let alone: Vec<Fingerprint> = (0..HOSTS).map(|i| solo(SEED, i, faults)).collect();
    for workers in [1, 3, 4] {
        let fleet = FleetRunner::exact(workers).run_seeded_sharded(SEED, HOSTS, fleet_host(faults));
        assert_eq!(alone, fleet, "workers={workers} diverged under crash churn");
    }
}

#[test]
fn host_panic_schedule_is_arena_invariant() {
    const SEED: u64 = 555;
    const HOSTS: usize = 24;
    let faults = Some(panicky());
    // Ground truth per host, in isolation: either a fingerprint or a
    // panic, observed without any arena sharing.
    let alone: Vec<Option<Fingerprint>> = (0..HOSTS)
        .map(|i| catch_unwind(AssertUnwindSafe(|| solo(SEED, i, faults))).ok())
        .collect();
    let survivors = alone.iter().flatten().count();
    assert!(
        survivors < HOSTS,
        "panic schedule never fired; the test is vacuous"
    );
    assert!(survivors > 0, "every host panicked; the test is vacuous");
    for workers in [1, 4] {
        let (outcomes, _) =
            FleetRunner::exact(workers).run_collect_seeded_sharded(SEED, HOSTS, fleet_host(faults));
        assert_eq!(outcomes.len(), HOSTS);
        for (i, (outcome, expected)) in outcomes.iter().zip(&alone).enumerate() {
            match expected {
                Some(fp) => assert_eq!(
                    outcome.completed(),
                    Some(fp),
                    "workers={workers}: host {i} diverged from its solo run"
                ),
                None => assert!(
                    outcome.is_failed(),
                    "workers={workers}: host {i} panicked solo but completed in-shard"
                ),
            }
        }
    }
}
