//! # TMO: Transparent Memory Offloading — reproduction library
//!
//! This crate is the top of the reproduction stack for *TMO: Transparent
//! Memory Offloading in Datacenters* (Weiner et al., ASPLOS '22). It
//! assembles the substrates — the PSI engine ([`tmo_psi`]), the kernel
//! memory-management simulator ([`tmo_mm`]), the offload backend device
//! models ([`tmo_backends`]), the workload profiles ([`tmo_workload`]),
//! and the Senpai / g-swap controllers ([`tmo_senpai`], [`tmo_gswap`]) —
//! into simulated datacenter hosts that can run every experiment in the
//! paper's evaluation.
//!
//! * [`machine`] — [`Machine`]: one host (DRAM, CPUs, cgroup tree, swap
//!   backend, filesystem SSD) running containerised workloads, with
//!   per-container PSI and metric recording.
//! * [`container`] — container instantiation from an
//!   [`tmo_workload::AppProfile`], including the Web RPS model and lazy
//!   anonymous-memory growth.
//! * [`runtime`] — [`TmoRuntime`]: the machine plus a controller
//!   (Senpai, g-swap, or none), closing the control loop each period.
//! * [`cost`] — the Figure 1 hardware cost model.
//! * [`fleet`] — multi-host aggregation for the fleet-wide savings
//!   figures.
//!
//! # Quickstart
//!
//! ```
//! use tmo::prelude::*;
//!
//! // A small host with a zswap backend.
//! let mut machine = Machine::new(MachineConfig {
//!     dram: ByteSize::from_mib(256),
//!     swap: SwapKind::Zswap {
//!         capacity_fraction: 0.3,
//!         allocator: ZswapAllocator::Zsmalloc,
//!     },
//!     ..MachineConfig::default()
//! });
//!
//! // Run the Feed profile under the production Senpai config.
//! let profile = tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128));
//! machine.add_container(&profile);
//! let mut runtime = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(20.0));
//! runtime.run(SimDuration::from_mins(5));
//!
//! // Senpai found Feed's cold memory and offloaded part of it.
//! let saved = runtime.machine().savings_fraction(ContainerId(0));
//! assert!(saved > 0.02, "saved {saved}");
//! ```

pub mod container;
pub mod cost;
pub mod fleet;
pub mod machine;
pub mod modulate;
pub mod runner;
pub mod runtime;

pub use container::{ContainerConfig, ContainerId};
pub use machine::{Machine, MachineConfig, MachineScratch, SwapKind, WorkingsetProfile};
pub use modulate::{NullModulator, WorkloadModulator};
pub use runner::{FleetError, FleetRunner, FleetStats, HostCtx, HostOutcome, ShardArena};
pub use runtime::{ControllerKind, TmoRuntime};
pub use tmo_mm::ProvenanceCharge;

/// Convenient glob-import surface for examples and experiments.
pub mod prelude {
    pub use crate::container::{ContainerConfig, ContainerId};
    pub use crate::machine::{Machine, MachineConfig, MachineScratch, SwapKind};
    pub use crate::modulate::{NullModulator, WorkloadModulator};
    pub use crate::runner::{FleetRunner, FleetStats, HostCtx, HostOutcome, ShardArena};
    pub use crate::runtime::{ControllerKind, TmoRuntime};
    pub use tmo_backends::{SsdModel, ZswapAllocator};
    pub use tmo_faults::FaultConfig;
    pub use tmo_gswap::GswapConfig;
    pub use tmo_mm::{CgroupId, ProvenanceCharge, ReclaimPolicy, ReclaimPriority};
    pub use tmo_psi::Resource;
    pub use tmo_senpai::{OomdConfig, PolicyMap, SenpaiConfig};
    pub use tmo_sim::{ByteSize, SimDuration, SimTime};
    pub use tmo_workload::{apps, tax, AccessTrace, AppProfile, DiurnalPattern, WebServerConfig};
}
