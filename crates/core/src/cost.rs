//! The Figure 1 hardware cost model.
//!
//! Figure 1 plots, across six server hardware generations, the cost of
//! DRAM, of compressed memory (estimated at the fleet-average 3x
//! compression ratio), and of SSD as a percentage of total compute
//! infrastructure. The paper's quoted anchors: DRAM cost grows to reach
//! 33% of server cost; iso-capacity SSD remains under 1% across
//! generations (about 10x cheaper per byte than compressed memory); and
//! the equipped NVMe SSD contributes under 3% of server cost.

/// Fleet-average compression ratio used for the compressed-memory cost
/// estimate.
pub const COMPRESSION_RATIO: f64 = 3.0;

/// Cost of one hardware generation, as fractions of total server cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationCost {
    /// Generation index, 1-based.
    pub generation: u32,
    /// DRAM cost share.
    pub memory: f64,
    /// Cost share of holding the same data in compressed memory
    /// (DRAM cost ÷ compression ratio).
    pub compressed_memory: f64,
    /// Iso-capacity SSD cost share (per-byte SSD is ~10x cheaper than
    /// compressed memory, ~30x cheaper than DRAM).
    pub ssd_iso_capacity: f64,
    /// The actually equipped NVMe SSD's share of server cost.
    pub ssd_equipped: f64,
}

/// DRAM cost shares read off Figure 1's trend, generations 1–6: rising
/// from ~13% on end-of-life Gen-1 hardware toward the quoted 33% on
/// upcoming Gen-6.
const MEMORY_SHARE: [f64; 6] = [0.13, 0.16, 0.20, 0.25, 0.29, 0.33];

/// Per-byte cost of SSD relative to DRAM.
const SSD_TO_DRAM_COST_RATIO: f64 = 1.0 / 30.0;

/// Equipped-SSD share of server cost (roughly flat, under 3%).
const SSD_EQUIPPED_SHARE: [f64; 6] = [0.028, 0.027, 0.026, 0.025, 0.024, 0.023];

/// The Figure 1 table: cost shares for generations 1–6.
///
/// # Example
///
/// ```
/// use tmo::cost::figure1;
///
/// let rows = figure1();
/// assert_eq!(rows.len(), 6);
/// // DRAM grows to 33% of server cost by Gen 6.
/// assert!((rows[5].memory - 0.33).abs() < 1e-9);
/// // Iso-capacity SSD stays under 1% in every generation.
/// assert!(rows.iter().all(|r| r.ssd_iso_capacity < 0.012));
/// ```
pub fn figure1() -> Vec<GenerationCost> {
    (0..6)
        .map(|i| {
            let memory = MEMORY_SHARE[i];
            GenerationCost {
                generation: i as u32 + 1,
                memory,
                compressed_memory: memory / COMPRESSION_RATIO,
                ssd_iso_capacity: memory * SSD_TO_DRAM_COST_RATIO,
                ssd_equipped: SSD_EQUIPPED_SHARE[i],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_cost_grows_to_one_third() {
        let rows = figure1();
        assert!(rows.windows(2).all(|w| w[1].memory > w[0].memory));
        assert!((rows.last().expect("six rows").memory - 0.33).abs() < 1e-9);
    }

    #[test]
    fn ssd_iso_capacity_stays_under_one_percent() {
        // "iso-capacity to DRAM, SSD remains under 1% of server cost
        // across generations" — with a whisker of slack for Gen 6.
        for row in figure1() {
            assert!(row.ssd_iso_capacity <= 0.0111, "gen {}", row.generation);
        }
    }

    #[test]
    fn compressed_memory_is_about_10x_ssd_cost() {
        for row in figure1() {
            let ratio = row.compressed_memory / row.ssd_iso_capacity;
            assert!((ratio - 10.0).abs() < 0.1, "ratio {ratio}");
        }
    }

    #[test]
    fn equipped_ssd_under_three_percent() {
        for row in figure1() {
            assert!(row.ssd_equipped < 0.03);
        }
    }

    #[test]
    fn compressed_memory_uses_3x_ratio() {
        for row in figure1() {
            assert!((row.compressed_memory * COMPRESSION_RATIO - row.memory).abs() < 1e-12);
        }
    }
}
