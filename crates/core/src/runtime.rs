//! The TMO control loop: a machine plus a controller.

use tmo_gswap::{GswapConfig, GswapController};
use tmo_sim::{ByteSize, SimDuration};

use tmo_senpai::{OomdConfig, OomdMonitor, PolicyMap, ReclaimDecision, Senpai, SenpaiConfig};

use crate::container::ContainerId;
use crate::machine::Machine;

/// Which controller closes the offloading loop.
#[derive(Debug)]
pub enum ControllerKind {
    /// No proactive offloading (the experiments' baseline tier).
    None,
    /// TMO's Senpai with one global config.
    Senpai(Senpai),
    /// Senpai with per-workload policies (§3.3 future work): one
    /// controller instance per container, resolved by workload name.
    SenpaiPerWorkload {
        /// The policy map controllers are resolved from.
        policies: PolicyMap,
        /// Lazily created controllers, indexed like the containers.
        controllers: Vec<Senpai>,
    },
    /// The g-swap promotion-rate baseline.
    Gswap(GswapController),
}

/// A machine under a controller's management.
///
/// Each simulation tick advances the machine; whenever the controller's
/// period elapses it reads every container's signals and issues
/// `memory.reclaim` requests.
///
/// # Example
///
/// See the [crate-level quickstart](crate).
#[derive(Debug)]
pub struct TmoRuntime {
    machine: Machine,
    controller: ControllerKind,
    oomd: Option<OomdMonitor>,
}

impl TmoRuntime {
    /// Wraps a machine with no controller.
    pub fn without_controller(machine: Machine) -> Self {
        TmoRuntime {
            machine,
            controller: ControllerKind::None,
            oomd: None,
        }
    }

    /// Wraps a machine under Senpai.
    pub fn with_senpai(machine: Machine, config: SenpaiConfig) -> Self {
        TmoRuntime {
            machine,
            controller: ControllerKind::Senpai(Senpai::new(config)),
            oomd: None,
        }
    }

    /// Wraps a machine under the g-swap baseline.
    pub fn with_gswap(machine: Machine, config: GswapConfig) -> Self {
        TmoRuntime {
            machine,
            controller: ControllerKind::Gswap(GswapController::new(config)),
            oomd: None,
        }
    }

    /// Wraps a machine under Senpai with per-workload policies: each
    /// container gets the config its name resolves to in `policies`.
    pub fn with_senpai_policies(machine: Machine, policies: PolicyMap) -> Self {
        TmoRuntime {
            machine,
            controller: ControllerKind::SenpaiPerWorkload {
                policies,
                controllers: Vec::new(),
            },
            oomd: None,
        }
    }

    /// Adds a pressure-based userspace OOM killer (§3.2.4): containers
    /// whose `full` memory pressure stays above the policy's threshold
    /// for its sustain window are killed.
    pub fn with_oomd(mut self, config: OomdConfig) -> Self {
        self.oomd = Some(OomdMonitor::new(config));
        self
    }

    /// The oomd monitor, if attached.
    pub fn oomd(&self) -> Option<&OomdMonitor> {
        self.oomd.as_ref()
    }

    /// The managed machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The controller.
    pub fn controller(&self) -> &ControllerKind {
        &self.controller
    }

    /// Consumes the runtime, returning the machine (for phase changes
    /// that swap controllers).
    pub fn into_machine(self) -> Machine {
        self.machine
    }

    /// One tick: machine first, then oomd, then the controller if due.
    pub fn tick(&mut self) {
        self.machine.tick();
        let now = self.machine.now();
        // Index loop instead of collecting ids: ticking must not
        // allocate in steady state, and the count is re-read where new
        // containers may have appeared mid-loop.
        let count = self.machine.container_count();
        if let Some(oomd) = &mut self.oomd {
            let dt = self.machine.config().tick;
            for id in (0..count).map(ContainerId) {
                if !self.machine.is_alive(id) {
                    continue;
                }
                let signal = self.machine.oomd_signal(id);
                if oomd.observe_signal(id.as_usize(), signal, dt).is_some() {
                    self.machine.kill_container(id);
                }
            }
        }
        // One guarded reclaim step: read the (possibly faulted) signal,
        // decide with the per-container backoff applied, act, and report
        // the outcome back so the backoff adapts. A dropped signal read
        // is a conservative hold-off — no reclaim on missing data.
        fn reclaim_guarded(machine: &mut Machine, senpai: &mut Senpai, id: ContainerId) {
            let Some(signal) = machine.senpai_signal_guarded(id) else {
                return;
            };
            let decision: ReclaimDecision = senpai.decide_for(id.as_usize(), &signal);
            if decision.reclaim > ByteSize::ZERO {
                let outcome = machine.reclaim(id, decision.reclaim);
                senpai.note_outcome(id.as_usize(), !outcome.reclaimed().is_zero());
            }
        }
        match &mut self.controller {
            ControllerKind::None => {}
            ControllerKind::Senpai(senpai) => {
                if senpai.due(now) {
                    for id in (0..count).map(ContainerId) {
                        if !self.machine.is_alive(id) {
                            continue;
                        }
                        reclaim_guarded(&mut self.machine, senpai, id);
                    }
                }
            }
            ControllerKind::SenpaiPerWorkload {
                policies,
                controllers,
            } => {
                // Materialise controllers for any newly added containers.
                while controllers.len() < count {
                    let name = self
                        .machine
                        .container(ContainerId(controllers.len()))
                        .name()
                        .to_string();
                    controllers.push(Senpai::new(policies.config_for(&name).clone()));
                }
                for id in (0..count).map(ContainerId) {
                    if !self.machine.is_alive(id) {
                        continue;
                    }
                    let senpai = &mut controllers[id.as_usize()];
                    if senpai.due(now) {
                        reclaim_guarded(&mut self.machine, senpai, id);
                    }
                }
            }
            ControllerKind::Gswap(gswap) => {
                if gswap.due(now) {
                    for id in (0..count).map(ContainerId) {
                        if !self.machine.is_alive(id) {
                            continue;
                        }
                        let signal = self.machine.promotion_signal(id);
                        let reclaim = gswap.decide(&signal);
                        if reclaim > ByteSize::ZERO {
                            self.machine.reclaim(id, reclaim);
                        }
                    }
                }
            }
        }
    }

    /// Runs for `duration` of simulated time.
    pub fn run(&mut self, duration: SimDuration) {
        let deadline = self.machine.now() + duration;
        while self.machine.now() < deadline {
            self.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, SwapKind};
    use tmo_backends::{SsdModel, ZswapAllocator};
    use tmo_psi::Resource;
    use tmo_sim::ByteSize;
    use tmo_workload::apps;

    fn base_machine(swap: SwapKind) -> Machine {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap,
            ..MachineConfig::default()
        });
        m.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(128)));
        m
    }

    #[test]
    fn senpai_offloads_cold_memory_without_hurting_pressure() {
        let machine = base_machine(SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        });
        let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(20.0));
        rt.run(SimDuration::from_mins(5));
        let saved = rt.machine().savings_fraction(ContainerId(0));
        // Feed is 30% cold; Senpai should find a solid share of it.
        assert!(saved > 0.05, "saved {saved}");
        assert!(saved < 0.5, "saved {saved}");
        // And pressure stays near the threshold, not far above it.
        let psi = rt
            .machine()
            .container(ContainerId(0))
            .psi()
            .some_avg10(Resource::Memory);
        assert!(psi < 0.05, "pressure {psi}");
    }

    #[test]
    fn no_controller_means_no_offloading() {
        let machine = base_machine(SwapKind::Ssd(SsdModel::C));
        let mut rt = TmoRuntime::without_controller(machine);
        rt.run(SimDuration::from_mins(1));
        assert_eq!(rt.machine().savings_fraction(ContainerId(0)), 0.0);
    }

    #[test]
    fn gswap_offloads_while_under_promotion_target() {
        let machine = base_machine(SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        });
        let mut rt = TmoRuntime::with_gswap(
            machine,
            tmo_gswap::GswapConfig {
                reclaim_ratio: 0.01,
                ..tmo_gswap::GswapConfig::default()
            },
        );
        rt.run(SimDuration::from_mins(3));
        let saved = rt.machine().savings_fraction(ContainerId(0));
        assert!(saved > 0.05, "saved {saved}");
    }

    #[test]
    fn protected_containers_are_skipped_by_senpai() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Ssd(SsdModel::C),
            ..MachineConfig::default()
        });
        m.add_container_with(
            &apps::feed().with_mem_total(ByteSize::from_mib(64)),
            crate::container::ContainerConfig {
                protected: true,
                ..Default::default()
            },
        );
        let mut rt = TmoRuntime::with_senpai(m, SenpaiConfig::accelerated(20.0));
        rt.run(SimDuration::from_mins(2));
        assert_eq!(rt.machine().savings_fraction(ContainerId(0)), 0.0);
    }

    #[test]
    fn per_workload_policies_differentiate_containers() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(512),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            seed: 67,
            ..MachineConfig::default()
        });
        // Two identical workloads under different policies.
        let a = m.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(128)));
        let mut batch = apps::feed().with_mem_total(ByteSize::from_mib(128));
        batch.name = "Batch".to_string();
        let b = m.add_container(&batch);
        let policies = tmo_senpai::PolicyMap::new(SenpaiConfig::accelerated(20.0)).with_policy(
            "Batch",
            SenpaiConfig {
                psi_threshold: 0.02,
                io_threshold: 0.10,
                ..SenpaiConfig::accelerated(40.0)
            },
        );
        let mut rt = TmoRuntime::with_senpai_policies(m, policies);
        rt.run(SimDuration::from_mins(4));
        let saved_default = rt.machine().savings_fraction(a);
        let saved_batch = rt.machine().savings_fraction(b);
        assert!(
            saved_batch > saved_default,
            "batch {saved_batch} should out-save default {saved_default}"
        );
        assert!(saved_default > 0.02, "default policy idle: {saved_default}");
    }

    #[test]
    fn senpai_survives_telemetry_faults_and_still_offloads() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            faults: Some(tmo_faults::FaultConfig {
                intensity: 1.0,
                stale_signal_rate: 0.2,
                dropped_signal_rate: 0.1,
                ..tmo_faults::FaultConfig::off()
            }),
            ..MachineConfig::default()
        });
        m.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(128)));
        let mut rt = TmoRuntime::with_senpai(m, SenpaiConfig::accelerated(20.0));
        rt.run(SimDuration::from_mins(5));
        // A third of the telemetry reads are bad; the hold-off must slow
        // Senpai down, not stop it.
        let saved = rt.machine().savings_fraction(ContainerId(0));
        assert!(saved > 0.03, "saved {saved}");
    }

    #[test]
    fn into_machine_supports_phase_changes() {
        let machine = base_machine(SwapKind::None);
        let mut rt = TmoRuntime::without_controller(machine);
        rt.run(SimDuration::from_secs(10));
        let machine = rt.into_machine();
        let t = machine.now();
        let mut rt2 = TmoRuntime::with_senpai(machine, SenpaiConfig::production());
        rt2.run(SimDuration::from_secs(10));
        assert!(rt2.machine().now() > t);
    }
}
