//! Container instantiation and per-tick workload execution state.

use tmo_mm::{CgroupId, PageId};
use tmo_psi::PsiGroup;
use tmo_sim::{ByteSize, SeriesId, SimDuration};
use tmo_workload::{AccessPlanner, AppProfile, WebServerModel};

/// Identity of a container within one [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub usize);

impl ContainerId {
    /// Raw index.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "container#{}", self.0)
    }
}

/// Optional behaviours layered on a profile when adding a container.
#[derive(Debug, Clone, Default)]
pub struct ContainerConfig {
    /// Attach the Web RPS admission model.
    pub web: Option<tmo_workload::WebServerConfig>,
    /// Lazily grow anonymous memory at this rate after start (the Web
    /// memory profile of §4.2: file cache loads up front, anon arrives
    /// with traffic). Growth stops at the profile's anon budget.
    pub anon_growth: Option<ByteSize>,
    /// Fraction of the anonymous budget allocated up front when growth
    /// is enabled (the rest arrives at `anon_growth` per second).
    pub anon_preload_fraction: f64,
    /// Mark as strict-SLA (protected from proactive reclaim).
    pub protected: bool,
    /// `memory.low` kernel protection for the container's cgroup.
    pub memory_low: Option<ByteSize>,
    /// Parent slice cgroup to attach under (root when `None`).
    pub slice: Option<tmo_mm::CgroupId>,
    /// Replay this pre-recorded access trace instead of sampling the
    /// temperature planner — pins the workload stream exactly across
    /// A/B tiers (wraps around if the run outlives the trace).
    pub trace: Option<tmo_workload::AccessTrace>,
    /// Scale access intensity (and web demand) with a time-of-day curve.
    pub diurnal: Option<tmo_workload::DiurnalPattern>,
    /// Pathological file-cache churn (the §5.1 self-extracting-binary
    /// anecdote): create this many bytes of file cache per second that
    /// are written once and never read again. Evicted churn pages are
    /// dropped entirely (the file was replaced).
    pub file_churn: Option<ByteSize>,
    /// Mark as relaxed-SLA (memory tax; tolerate higher pressure).
    pub relaxed: bool,
}

/// Book-keeping for one tick of container execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickStats {
    /// Page touches executed.
    pub accesses: u64,
    /// Major faults (all kinds).
    pub faults: u64,
    /// Swap-ins among the faults.
    pub swapins: u64,
    /// Workingset refaults among the faults.
    pub refaults: u64,
    /// Total stall time across tasks.
    pub stall: SimDuration,
    /// Memory-PSI-qualifying stall.
    pub mem_stall: SimDuration,
    /// IO-PSI-qualifying stall.
    pub io_stall: SimDuration,
    /// CPU time the tick's work demanded.
    pub cpu_demand: SimDuration,
    /// Runnable-but-waiting time from CPU oversubscription.
    pub cpu_stall: SimDuration,
    /// Whether an allocation failed this tick (memory-bound signal).
    pub alloc_failed: bool,
}

/// One running container: profile + pages + PSI domain + optional web
/// model.
#[derive(Debug)]
pub struct Container {
    pub(crate) name: String,
    pub(crate) cg: CgroupId,
    pub(crate) profile: AppProfile,
    pub(crate) planner: AccessPlanner,
    /// Pages per temperature class (anon and file interleaved in the
    /// profile's proportion).
    pub(crate) class_pages: Vec<Vec<PageId>>,
    pub(crate) psi: PsiGroup,
    pub(crate) web: Option<WebServerModel>,
    /// Remaining anonymous pages to allocate lazily and the rate.
    pub(crate) growth_remaining_pages: u64,
    pub(crate) growth_pages_per_sec: f64,
    /// Fractional page carry between ticks for the growth model.
    pub(crate) growth_carry: f64,
    pub(crate) protected: bool,
    pub(crate) relaxed: bool,
    /// Swap-exhaustion flag from the last reclaim on this container.
    pub(crate) swap_full_seen: bool,
    /// False once the container has been killed.
    pub(crate) alive: bool,
    /// Pinned access trace, when configured.
    pub(crate) trace: Option<tmo_workload::AccessTrace>,
    /// Time-of-day demand curve, when configured.
    pub(crate) diurnal: Option<tmo_workload::DiurnalPattern>,
    /// File-cache churn rate in pages/second (0 = none).
    pub(crate) churn_pages_per_sec: f64,
    /// Fractional churn carry between ticks.
    pub(crate) churn_carry: f64,
    /// Write-once never-read file pages created by the churn.
    pub(crate) churn_pages: Vec<PageId>,
    /// Anonymous pages leaked by a scenario modulator: allocated, never
    /// touched again, released only when the container is killed.
    pub(crate) leak_pages: Vec<PageId>,
    /// Fractional leak carry between ticks.
    pub(crate) leak_carry: f64,
    /// Initial resident footprint (pages), the savings baseline.
    pub(crate) initial_resident_pages: u64,
    /// Stats of the most recent tick.
    pub(crate) last_tick: TickStats,
    /// Cached recorder handles for this container's per-tick series,
    /// resolved (and the names formatted) once on the first recorded
    /// tick instead of on every tick.
    pub(crate) series: Option<ContainerSeriesIds>,
}

/// Recorder handles for one container's per-tick metric series.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ContainerSeriesIds {
    pub(crate) resident_mib: SeriesId,
    pub(crate) swap_mib: SeriesId,
    pub(crate) file_cache_mib: SeriesId,
    pub(crate) psi_mem_some10: SeriesId,
    pub(crate) psi_io_some10: SeriesId,
    pub(crate) psi_cpu_some10: SeriesId,
    pub(crate) promotion_rate: SeriesId,
    pub(crate) refault_rate: SeriesId,
    pub(crate) swapout_rate_mbps: SeriesId,
    /// Only web containers record `{name}.rps`.
    pub(crate) rps: Option<SeriesId>,
}

impl Container {
    /// Container name (from the profile).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing cgroup.
    pub fn cgroup(&self) -> CgroupId {
        self.cg
    }

    /// The workload profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// This container's PSI domain.
    pub fn psi(&self) -> &PsiGroup {
        &self.psi
    }

    /// The web model, when attached.
    pub fn web(&self) -> Option<&WebServerModel> {
        self.web.as_ref()
    }

    /// Stats of the most recent tick.
    pub fn last_tick(&self) -> TickStats {
        self.last_tick
    }

    /// Whether the container is protected from proactive reclaim.
    pub fn is_protected(&self) -> bool {
        self.protected
    }

    /// Whether the container has a relaxed SLA.
    pub fn is_relaxed(&self) -> bool {
        self.relaxed
    }

    /// Whether the container is still running (not killed).
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Pages currently held by the scenario leak model (resident or
    /// offloaded; released on kill).
    pub fn leaked_pages(&self) -> usize {
        self.leak_pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_id_display() {
        assert_eq!(ContainerId(3).to_string(), "container#3");
        assert_eq!(ContainerId(3).as_usize(), 3);
    }

    #[test]
    fn default_config_is_plain() {
        let c = ContainerConfig::default();
        assert!(c.web.is_none());
        assert!(c.anon_growth.is_none());
        assert!(!c.protected);
        assert!(!c.relaxed);
    }
}
