//! Workload modulation hooks for scenario engines.
//!
//! A [`WorkloadModulator`] lets an external engine (the `tmo-scenarios`
//! crate) reshape container workloads *over time* without the core
//! simulator knowing anything about scenario formats: diurnal demand
//! waves, flash crowds, slow memory leaks, sidecar file-churn spikes,
//! and container churn storms all reduce to these four questions asked
//! once per container per tick.
//!
//! # Determinism contract
//!
//! Every method must be a **pure function of its arguments** (plus the
//! modulator's immutable construction-time state, e.g. a seed-derived
//! fault plan). The machine may ask in any order and any number of
//! times; answers must not depend on call history, wall-clock time, or
//! ambient entropy. This is the same discipline as
//! [`tmo_faults::FaultPlan`], and it is what keeps a modulated fleet
//! bit-identical across `--jobs N`.
//!
//! A machine with no modulator attached behaves byte-identically to a
//! machine built before this hook existed: the default implementations
//! are exact no-ops and the tick path draws no extra RNG values.

use tmo_sim::{ByteSize, SimDuration, SimTime};

/// Per-tick workload modulation, asked by [`crate::Machine::tick`].
///
/// All methods have neutral defaults, so an implementation overrides
/// only the behaviours its scenario uses.
pub trait WorkloadModulator: std::fmt::Debug + Send {
    /// Multiplier on the container's access intensity at `now`
    /// (composes with the web-admission and diurnal scales already on
    /// the container). `1.0` is neutral; `3.0` is a flash crowd;
    /// `0.3` is a nighttime trough.
    fn demand_scale(&self, container: usize, now: SimTime) -> f64 {
        let _ = (container, now);
        1.0
    }

    /// Anonymous memory the container leaks per second at `now` —
    /// allocated, never touched again, and only released when the
    /// container is killed. [`ByteSize::ZERO`] is neutral.
    fn leak_bytes_per_sec(&self, container: usize, now: SimTime) -> ByteSize {
        let _ = (container, now);
        ByteSize::ZERO
    }

    /// Extra write-once file-cache churn per second at `now`, on top of
    /// the container's configured churn rate (the sidecar-tax spike).
    /// [`ByteSize::ZERO`] is neutral.
    fn churn_bytes_per_sec(&self, container: usize, now: SimTime) -> ByteSize {
        let _ = (container, now);
        ByteSize::ZERO
    }

    /// If a churn-storm crash fires at `tick`, the index (in
    /// `[0, containers)`) of the container to kill and restart.
    /// Must derive from a pure hash of `(tick, …)` — see
    /// [`tmo_faults::FaultPlan`] — never from stateful RNG.
    fn storm_kill_victim(
        &self,
        tick: u64,
        now: SimTime,
        dt: SimDuration,
        containers: u64,
    ) -> Option<u64> {
        let _ = (tick, now, dt, containers);
        None
    }
}

/// The neutral modulator: every hook is a no-op. Attaching it is
/// behaviourally identical to attaching nothing (pinned by test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullModulator;

impl WorkloadModulator for NullModulator {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_modulator_is_neutral() {
        let m = NullModulator;
        let now = SimTime::from_secs(5);
        let dt = SimDuration::from_millis(100);
        assert_eq!(m.demand_scale(0, now), 1.0);
        assert_eq!(m.leak_bytes_per_sec(1, now), ByteSize::ZERO);
        assert_eq!(m.churn_bytes_per_sec(2, now), ByteSize::ZERO);
        assert_eq!(m.storm_kill_victim(7, now, dt, 3), None);
    }
}
