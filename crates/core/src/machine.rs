//! One simulated datacenter host.

use tmo_backends::{NvmDevice, OffloadBackend, SsdModel, ZswapAllocator, ZswapPool};
use tmo_faults::{FaultConfig, FaultPlan, FaultyBackend, HostFaults, SignalFate};
use tmo_mm::{MemoryManager, MmConfig, PageKind, ReclaimOutcome, ReclaimPolicy};
use tmo_psi::{PsiGroup, Resource, SpanBatch};
use tmo_senpai::{ContainerSignal, OomdSignal};
use tmo_sim::{ByteSize, Clock, DetRng, Recorder, SeriesId, SimDuration, SimTime};
use tmo_workload::{AccessPlanner, AppProfile, WebServerModel};

use crate::container::{Container, ContainerConfig, ContainerId, ContainerSeriesIds, TickStats};
use crate::modulate::WorkloadModulator;

/// Which offload backend the host's swap uses.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapKind {
    /// No swap: file-only mode (the paper's first deployment step).
    None,
    /// A fleet SSD model (Figure 5) with its catalog capacity.
    Ssd(SsdModel),
    /// A fleet SSD model with an explicit swap-partition capacity (for
    /// swap-exhaustion experiments).
    SsdCapped(SsdModel, ByteSize),
    /// A zswap compressed-memory pool carved out of DRAM.
    Zswap {
        /// Pool capacity as a fraction of DRAM.
        capacity_fraction: f64,
        /// Pool allocator model.
        allocator: ZswapAllocator,
    },
    /// A byte-addressable NVM device of the given capacity (§5.2
    /// future tier).
    Nvm(ByteSize),
    /// The §5.2 tiered hierarchy: a zswap pool over an SSD, with
    /// background demotion of idle warm pages.
    Tiered {
        /// Warm-tier pool capacity as a fraction of DRAM.
        zswap_fraction: f64,
        /// Warm-tier allocator.
        allocator: ZswapAllocator,
        /// Cold-tier SSD model.
        ssd: SsdModel,
        /// Age after which idle warm pages demote to the SSD.
        demote_after: SimDuration,
        /// Compression ratio below which pages bypass the warm tier.
        min_compress_ratio: f64,
    },
}

/// Host configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// DRAM size.
    pub dram: ByteSize,
    /// Simulated page granularity.
    pub page_size: ByteSize,
    /// CPU count (bounds PSI compute potential).
    pub cpus: u32,
    /// Swap backend.
    pub swap: SwapKind,
    /// Filesystem SSD model.
    pub fs_ssd: SsdModel,
    /// Kernel reclaim policy.
    pub policy: ReclaimPolicy,
    /// Simulation tick.
    pub tick: SimDuration,
    /// CPU time consumed per page access; with the tick length and CPU
    /// count this determines when CPU pressure appears.
    pub access_cpu: SimDuration,
    /// Run seed: every stochastic draw derives from it.
    pub seed: u64,
    /// Deterministic fault injection (chaos experiments). `None` — and
    /// a config whose intensity is zero — leaves the host fault-free.
    /// The fault schedule derives purely from `seed`, so it is as
    /// reproducible as the rest of the run.
    pub faults: Option<FaultConfig>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            dram: ByteSize::from_gib(1),
            page_size: ByteSize::from_kib(16),
            cpus: 8,
            swap: SwapKind::None,
            fs_ssd: SsdModel::C,
            policy: ReclaimPolicy::RefaultBalanced,
            tick: SimDuration::from_millis(100),
            access_cpu: SimDuration::from_micros(20),
            seed: 42,
            faults: None,
        }
    }
}

/// A workingset profile derived from a container's resident-size series
/// under Senpai — the §3.3 observability product: "an accurate
/// workingset profile of the application over time" that "allows
/// application developers to more precisely provision memory capacity".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingsetProfile {
    /// Samples the profile is computed from.
    pub samples: usize,
    /// Smallest resident size observed (MiB) — the controller's best
    /// estimate of the true workingset floor.
    pub min_mib: f64,
    /// Median resident size (MiB).
    pub p50_mib: f64,
    /// 95th-percentile resident size (MiB).
    pub p95_mib: f64,
    /// Final resident size (MiB).
    pub final_mib: f64,
}

impl WorkingsetProfile {
    /// A provisioning recommendation: the p95 workingset plus a safety
    /// headroom fraction.
    pub fn recommended_mib(&self, headroom: f64) -> f64 {
        self.p95_mib * (1.0 + headroom.max(0.0))
    }
}

/// Reusable allocation scratch for one [`Machine`]'s hot tick path.
///
/// Every buffer in here is **semantically inert**: each is cleared (or
/// fully overwritten) before any tick reads it, so the only thing a
/// recycled scratch carries from one machine to the next is heap
/// *capacity*, never values. That property is what lets the fleet
/// runner hand one scratch from host to host inside a shard arena
/// without breaking the bit-identical determinism contract — and it is
/// pinned by the `arena_reuse` invariant tests.
///
/// Obtain one from [`Machine::into_scratch`] when a host simulation
/// finishes, and thread it into the next host via
/// [`Machine::with_scratch`].
#[derive(Debug, Default)]
pub struct MachineScratch {
    /// Batched page ids drawn for one temperature class.
    batch_ids: Vec<tmo_mm::PageId>,
    /// Per-class touch counts for one container tick.
    plan: Vec<u64>,
    /// Swap-in latencies observed during one tick.
    swap_latencies: Vec<f64>,
    /// Per-container tick stats for one tick.
    all_stats: Vec<TickStats>,
    /// Packed stall spans for one container's PSI window.
    container_batch: SpanBatch,
    /// Packed stall spans for the machine-wide PSI window (all
    /// containers' tasks in one batch).
    host_batch: SpanBatch,
}

impl MachineScratch {
    /// Clears every buffer, keeping capacity. Values never survive a
    /// handoff; only the allocations do.
    fn scrub(&mut self) {
        self.batch_ids.clear();
        self.plan.clear();
        self.swap_latencies.clear();
        self.all_stats.clear();
        self.container_batch.clear();
        self.host_batch.clear();
    }
}

/// One simulated host: DRAM, CPUs, a cgroup tree of containers, a swap
/// backend, a filesystem SSD, per-container PSI, and a metric recorder.
///
/// See the [crate docs](crate) for a quickstart.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    mm: MemoryManager,
    clock: Clock,
    containers: Vec<Container>,
    rng: DetRng,
    recorder: Recorder,
    /// fs-device read counter at the previous tick, for rate series.
    prev_fs_reads: u64,
    /// swap backend read counter at the previous tick.
    prev_swap_reads: u64,
    /// Machine-wide PSI domain (union of every container's tasks).
    host_psi: PsiGroup,
    /// Run-level swap-in latency percentiles (streaming).
    swap_lat_p50: tmo_sim::P2Quantile,
    swap_lat_p90: tmo_sim::P2Quantile,
    swap_lat_p99: tmo_sim::P2Quantile,
    swap_lat_mean: tmo_sim::Welford,
    /// Host-level fault schedule (signal loss, crash churn, panics);
    /// `None` when the run is fault-free.
    host_faults: Option<HostFaults>,
    /// Last fresh Senpai signal per container, replayed on stale reads.
    signal_cache: Vec<Option<ContainerSignal>>,
    /// Scenario workload modulator (demand waves, leaks, churn spikes,
    /// storm kills); `None` leaves the tick path byte-identical to a
    /// pre-scenario machine.
    modulator: Option<Box<dyn WorkloadModulator>>,
    /// Reusable tick-path buffers (see [`MachineScratch`]); recyclable
    /// across machines via `with_scratch`/`into_scratch`.
    scratch: MachineScratch,
    /// Cached recorder handles for the machine-level series, resolved on
    /// the first recorded tick so steady-state ticks skip name lookups.
    machine_series: Option<MachineSeriesIds>,
    /// Cached handle for `swap.read_p90_ms`, resolved lazily on the
    /// first tick that observes a swap-in (the series only exists on
    /// runs that actually swap, same as before).
    swap_p90_id: Option<SeriesId>,
}

/// Recorder handles for the per-tick machine-wide series.
#[derive(Debug, Clone, Copy)]
struct MachineSeriesIds {
    psi_mem_some10: SeriesId,
    free_mib: SeriesId,
    zswap_pool_mib: SeriesId,
    fs_read_iops: SeriesId,
    /// `None` when the swap backend is not an SSD (series never exists).
    swap_write_mbps: Option<SeriesId>,
    swap_read_iops: Option<SeriesId>,
}

impl Machine {
    /// Builds a host from the config.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (zero page size, zero CPUs, zswap
    /// fraction outside `(0, 1)`).
    pub fn new(config: MachineConfig) -> Self {
        Machine::with_scratch(config, MachineScratch::default())
    }

    /// Like [`Machine::new`], but adopts an existing scratch so its
    /// buffer capacity is reused instead of re-grown from zero. The
    /// scratch is scrubbed on adoption: behavior is bit-identical to
    /// `Machine::new` whatever the scratch previously held.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (zero page size, zero CPUs, zswap
    /// fraction outside `(0, 1)`).
    pub fn with_scratch(config: MachineConfig, mut scratch: MachineScratch) -> Self {
        scratch.scrub();
        assert!(config.cpus > 0, "a machine needs CPUs");
        let mut seed_rng = DetRng::seed_from_u64(config.seed);
        // A zero-intensity config is indistinguishable from no faults;
        // normalising here keeps the fault-free path byte-identical.
        let faults = config.faults.filter(|fc| !fc.is_off());
        let swap: Option<Box<dyn OffloadBackend>> = match &config.swap {
            SwapKind::None => None,
            SwapKind::Ssd(model) => Some(Box::new(tmo_backends::catalog::fleet_device(*model))),
            SwapKind::SsdCapped(model, capacity) => {
                let mut spec = model.spec();
                spec.capacity = *capacity;
                Some(Box::new(tmo_backends::SsdDevice::new(spec)))
            }
            SwapKind::Zswap {
                capacity_fraction,
                allocator,
            } => {
                assert!(
                    *capacity_fraction > 0.0 && *capacity_fraction < 1.0,
                    "zswap fraction {capacity_fraction} outside (0, 1)"
                );
                Some(Box::new(ZswapPool::new(
                    config.dram.mul_f64(*capacity_fraction),
                    *allocator,
                )))
            }
            SwapKind::Nvm(capacity) => Some(Box::new(NvmDevice::new(*capacity))),
            SwapKind::Tiered {
                zswap_fraction,
                allocator,
                ssd,
                demote_after,
                min_compress_ratio,
            } => {
                assert!(
                    *zswap_fraction > 0.0 && *zswap_fraction < 1.0,
                    "zswap fraction {zswap_fraction} outside (0, 1)"
                );
                Some(Box::new(tmo_backends::TieredBackend::new(
                    ZswapPool::new(config.dram.mul_f64(*zswap_fraction), *allocator),
                    tmo_backends::catalog::fleet_device(*ssd),
                    *demote_after,
                    *min_compress_ratio,
                )))
            }
        };
        // The fault plan derives from the host seed alone, in a seed
        // namespace disjoint from the workload RNG streams, so fault
        // timing never perturbs (or is perturbed by) workload draws.
        let swap = match (swap, faults) {
            (Some(inner), Some(fc)) => Some(Box::new(FaultyBackend::new(
                inner,
                FaultPlan::new(config.seed, 0),
                fc,
            )) as Box<dyn OffloadBackend>),
            (swap, _) => swap,
        };
        let mm = MemoryManager::new(MmConfig {
            page_size: config.page_size,
            total_dram: config.dram,
            swap,
            fs_device: tmo_backends::catalog::fleet_device(config.fs_ssd),
            policy: config.policy,
            seed: seed_rng.fork(1).next_u64(),
        });
        let clock = Clock::new(config.tick);
        let rng = seed_rng.fork(2);
        let cpus = config.cpus;
        let host_faults = faults.map(|fc| HostFaults::new(config.seed, 0, fc));
        Machine {
            config,
            mm,
            clock,
            containers: Vec::new(),
            rng,
            recorder: Recorder::new(),
            prev_fs_reads: 0,
            prev_swap_reads: 0,
            host_psi: PsiGroup::new(cpus),
            swap_lat_p50: tmo_sim::P2Quantile::new(0.5),
            swap_lat_p90: tmo_sim::P2Quantile::new(0.9),
            swap_lat_p99: tmo_sim::P2Quantile::new(0.99),
            swap_lat_mean: tmo_sim::Welford::new(),
            host_faults,
            signal_cache: Vec::new(),
            modulator: None,
            scratch,
            machine_series: None,
            swap_p90_id: None,
        }
    }

    /// Attaches a scenario workload modulator. Its hooks are consulted
    /// every tick for every container; see [`WorkloadModulator`] for
    /// the purity contract that keeps modulated runs deterministic.
    pub fn set_modulator(&mut self, modulator: Box<dyn WorkloadModulator>) {
        self.modulator = Some(modulator);
    }

    /// Detaches the modulator, returning it if one was attached.
    pub fn clear_modulator(&mut self) -> Option<Box<dyn WorkloadModulator>> {
        self.modulator.take()
    }

    /// Turns on causal reclaim-pressure tracking (idempotent): the mm
    /// layer records, per eviction, which container's demand triggered
    /// it, and charges each later fault-back stall to that trigger. The
    /// tick loop names the acting container around every allocation and
    /// access batch, and [`Machine::reclaim`] names its target, so
    /// proactive (Senpai) evictions self-attribute while direct-reclaim
    /// evictions are charged to the allocator that forced them.
    /// Tracking draws no RNG and emits nothing: enabled or not, all
    /// simulation output stays byte-identical.
    pub fn enable_causal_tracking(&mut self) {
        self.mm.enable_provenance();
    }

    /// Drains the accumulated `(victim, offender)` stall charges into
    /// `out` (cleared first; empty unless
    /// [`Machine::enable_causal_tracking`] was called). Charges are in
    /// cgroup terms; map them to containers via
    /// [`Container::cgroup`](crate::container::Container::cgroup).
    pub fn drain_causal_charges(&mut self, out: &mut Vec<tmo_mm::ProvenanceCharge>) {
        self.mm.drain_provenance_charges(out);
    }

    /// Retires the machine, releasing its scratch buffers (scrubbed:
    /// capacity only, no values) for the next host to adopt via
    /// [`Machine::with_scratch`].
    pub fn into_scratch(self) -> MachineScratch {
        let mut scratch = self.scratch;
        scratch.scrub();
        scratch
    }

    /// The host configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The kernel memory manager (read access for stats / coldness).
    pub fn mm(&self) -> &MemoryManager {
        &self.mm
    }

    /// Mutable kernel access for experiments that drive reclaim or
    /// tuning directly.
    pub fn mm_mut(&mut self) -> &mut MemoryManager {
        &mut self.mm
    }

    /// Recorded metric series.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// A container by id.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different machine.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.0]
    }

    /// All container ids.
    pub fn container_ids(&self) -> impl Iterator<Item = ContainerId> {
        (0..self.containers.len()).map(ContainerId)
    }

    /// Number of containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// The machine-wide PSI domain: the aggregate of every container's
    /// tasks, equivalent to the system-level `/proc/pressure` files.
    pub fn host_psi(&self) -> &PsiGroup {
        &self.host_psi
    }

    /// Free DRAM as a fraction of total.
    pub fn free_fraction(&self) -> f64 {
        let g = self.mm.global_stat();
        g.free_bytes.as_u64() as f64 / g.total_dram.as_u64() as f64
    }

    /// Run-level swap-in latency summary in milliseconds:
    /// `(p50, p90, p99, mean)` over every swap fault so far (streaming
    /// P² estimates; zeros before any swap-in).
    pub fn swap_latency_summary_ms(&self) -> (f64, f64, f64, f64) {
        (
            self.swap_lat_p50.value() * 1e3,
            self.swap_lat_p90.value() * 1e3,
            self.swap_lat_p99.value() * 1e3,
            self.swap_lat_mean.mean() * 1e3,
        )
    }

    /// Creates an intermediate cgroup (a "slice" in systemd terms) to
    /// parent containers under; `memory.max`, `memory.low`, and
    /// `memory.reclaim` on the slice apply to the whole subtree.
    pub fn create_slice(&mut self, name: &str) -> tmo_mm::CgroupId {
        self.mm.create_cgroup(name, None)
    }

    /// Adds a plain container for `profile` with default behaviour.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot be allocated (size the machine so
    /// initial workloads fit).
    pub fn add_container(&mut self, profile: &AppProfile) -> ContainerId {
        self.add_container_with(profile, ContainerConfig::default())
    }

    /// Adds a container with explicit behaviour flags.
    ///
    /// # Panics
    ///
    /// See [`Machine::add_container`].
    pub fn add_container_with(
        &mut self,
        profile: &AppProfile,
        cfg: ContainerConfig,
    ) -> ContainerId {
        let cg = self.mm.create_cgroup(&profile.name, cfg.slice);
        self.mm.set_compress_ratio(cg, profile.compress_ratio);
        let total_pages = profile
            .mem_total
            .div_ceil_pages(self.config.page_size)
            .as_u64();
        let planner = AccessPlanner::new(profile.classes.clone(), total_pages);

        let growth_total_anon = if cfg.anon_growth.is_some() {
            profile.anon_bytes().as_u64() / self.config.page_size.as_u64()
        } else {
            0
        };
        let preload_anon = if cfg.anon_growth.is_some() {
            (growth_total_anon as f64 * cfg.anon_preload_fraction.clamp(0.0, 1.0)) as u64
        } else {
            0
        };

        // Allocate each temperature class's pages, splitting anon/file
        // by the profile fraction. Under lazy growth only the preload
        // share of anon is allocated now.
        let anon_budget_now = if cfg.anon_growth.is_some() {
            preload_anon
        } else {
            u64::MAX
        };
        let mut anon_allocated = 0u64;
        let now = self.clock.now();
        let mut class_pages: Vec<Vec<tmo_mm::PageId>> = Vec::new();
        for (ci, &n) in planner.pages_per_class().iter().enumerate() {
            let want_anon = (n as f64 * profile.anon_fraction).round() as u64;
            let anon_now = want_anon.min(anon_budget_now.saturating_sub(anon_allocated));
            let file_now = n - want_anon;
            let mut pages = Vec::with_capacity((anon_now + file_now) as usize);
            if anon_now > 0 {
                let out = self
                    .mm
                    .alloc_pages(cg, PageKind::Anon, anon_now, now)
                    .unwrap_or_else(|e| {
                        panic!(
                            "initial anon allocation failed for {} class {ci}: {e}",
                            profile.name
                        )
                    });
                pages.extend(out.pages);
                anon_allocated += anon_now;
            }
            if file_now > 0 {
                let out = self
                    .mm
                    .alloc_pages(cg, PageKind::File, file_now, now)
                    .unwrap_or_else(|e| {
                        panic!(
                            "initial file allocation failed for {} class {ci}: {e}",
                            profile.name
                        )
                    });
                pages.extend(out.pages);
            }
            class_pages.push(pages);
        }

        let growth_remaining = growth_total_anon.saturating_sub(anon_allocated);
        let growth_pages_per_sec = cfg
            .anon_growth
            .map(|rate| rate.as_u64() as f64 / self.config.page_size.as_u64() as f64)
            .unwrap_or(0.0);
        let initial_resident_pages = self.mm.cgroup_stat(cg).resident().as_u64();

        let id = ContainerId(self.containers.len());
        self.containers.push(Container {
            name: profile.name.clone(),
            cg,
            profile: profile.clone(),
            planner,
            class_pages,
            psi: PsiGroup::new(self.config.cpus),
            web: cfg.web.map(WebServerModel::new),
            growth_remaining_pages: growth_remaining,
            growth_pages_per_sec,
            growth_carry: 0.0,
            protected: cfg.protected,
            relaxed: cfg.relaxed,
            swap_full_seen: false,
            alive: true,
            trace: cfg.trace,
            diurnal: cfg.diurnal,
            churn_pages_per_sec: cfg
                .file_churn
                .map(|rate| rate.as_u64() as f64 / self.config.page_size.as_u64() as f64)
                .unwrap_or(0.0),
            churn_carry: 0.0,
            churn_pages: Vec::new(),
            leak_pages: Vec::new(),
            leak_carry: 0.0,
            initial_resident_pages,
            last_tick: TickStats::default(),
            series: None,
        });
        if cfg.protected {
            self.mm.set_priority(cg, tmo_mm::ReclaimPriority::Strict);
        } else if cfg.relaxed {
            self.mm.set_priority(cg, tmo_mm::ReclaimPriority::Relaxed);
        }
        if let Some(low) = cfg.memory_low {
            self.mm.set_memory_low(cg, low);
        }
        id
    }

    /// Runs one simulation tick: every container generates its access
    /// stream, faults feed PSI, web models adjust admission, devices and
    /// rate counters advance, and the standard metric series are
    /// recorded.
    pub fn tick(&mut self) {
        let dt = self.clock.tick_len();
        let now = self.clock.tick();
        let free_fraction = self.free_fraction();
        // Tick-local accumulators live in the scratch so their capacity
        // survives across ticks (and, via into_scratch, across hosts).
        // Each is cleared here before any read, so reuse is invisible.
        let mut swap_latencies = std::mem::take(&mut self.scratch.swap_latencies);
        swap_latencies.clear();
        let mut all_stats = std::mem::take(&mut self.scratch.all_stats);
        all_stats.clear();
        all_stats.reserve(self.containers.len());
        for ci in 0..self.containers.len() {
            if !self.containers[ci].alive {
                all_stats.push(TickStats::default());
                continue;
            }
            let stats = self.run_container_tick(ci, dt, now, free_fraction, &mut swap_latencies);
            all_stats.push(stats);
        }

        // CPU contention: when aggregate demand exceeds the machine's
        // capacity, the overflow is runnable-but-waiting time, split
        // across containers in proportion to their demand (§3.2.3).
        let capacity = dt.mul_f64(self.config.cpus as f64);
        let total_demand: SimDuration = all_stats.iter().map(|s| s.cpu_demand).sum();
        let overload = if total_demand > capacity {
            1.0 - capacity / total_demand
        } else {
            0.0
        };
        let mut container_batch = std::mem::take(&mut self.scratch.container_batch);
        let mut host_batch = std::mem::take(&mut self.scratch.host_batch);
        host_batch.clear();
        for (ci, stats) in all_stats.iter_mut().enumerate() {
            if self.containers[ci].alive {
                stats.cpu_stall = stats.cpu_demand.mul_f64(overload);
                self.feed_psi(ci, stats, dt, &mut container_batch, &mut host_batch);
            }
            self.containers[ci].last_tick = *stats;
        }
        self.host_psi.observe_batch(dt, &host_batch);

        self.mm.tick(dt);
        self.record_tick(now, &mut swap_latencies);
        // Return the accumulators before fault injection: an injected
        // host panic must not leak their capacity for the tick it fires.
        self.scratch.swap_latencies = swap_latencies;
        self.scratch.all_stats = all_stats;
        self.scratch.container_batch = container_batch;
        self.scratch.host_batch = host_batch;
        self.inject_host_faults(dt);
    }

    /// Applies this tick's host-level fault schedule — container crash
    /// churn (kill + immediate restart) and injected host panics — plus
    /// the scenario modulator's churn-storm kills. The panic is
    /// deliberate: the fleet runner's per-host isolation must convert
    /// it into a recorded failure, not lose the fleet.
    fn inject_host_faults(&mut self, dt: SimDuration) {
        let tick = self.clock.ticks();
        let now = self.clock.now();
        let n = self.containers.len() as u64;
        if let Some(hf) = self.host_faults {
            if hf.panics_at(tick, dt) {
                panic!("injected host panic at tick {tick}");
            }
            if n > 0 {
                if let Some(victim) = hf.crash_victim(tick, dt, n) {
                    let id = ContainerId(victim as usize);
                    if self.containers[id.0].alive {
                        self.kill_container(id);
                        self.restart_container(id);
                    }
                }
            }
        }
        if n == 0 {
            return;
        }
        let storm = self
            .modulator
            .as_ref()
            .and_then(|m| m.storm_kill_victim(tick, now, dt, n));
        if let Some(victim) = storm {
            let id = ContainerId((victim % n) as usize);
            if self.containers[id.0].alive {
                self.kill_container(id);
                self.restart_container(id);
            }
        }
    }

    fn run_container_tick(
        &mut self,
        ci: usize,
        dt: SimDuration,
        now: SimTime,
        free_fraction: f64,
        swap_latencies: &mut Vec<f64>,
    ) -> TickStats {
        let mut stats = TickStats::default();
        let cg = self.containers[ci].cg;
        // Everything below acts on this container's behalf: its
        // allocations and accesses are the demand that triggers any
        // reclaim they cause (no-op unless causal tracking is on).
        self.mm.set_reclaim_trigger(Some(cg));

        // 1. Lazy anonymous growth.
        if self.containers[ci].growth_remaining_pages > 0 {
            let want = self.containers[ci].growth_pages_per_sec * dt.as_secs_f64()
                + self.containers[ci].growth_carry;
            let n = (want as u64).min(self.containers[ci].growth_remaining_pages);
            self.containers[ci].growth_carry = want - (want as u64) as f64;
            if n > 0 {
                match self.mm.alloc_pages(cg, PageKind::Anon, n, now) {
                    Ok(out) => {
                        stats.mem_stall += out.reclaim_stall;
                        stats.stall += out.reclaim_stall;
                        self.containers[ci].growth_remaining_pages -= n;
                        // Distribute new pages across classes by weight.
                        let fractions: Vec<f64> = self.containers[ci]
                            .planner
                            .classes()
                            .iter()
                            .map(|c| c.fraction)
                            .collect();
                        for page in out.pages {
                            let class = self.rng.weighted_index(&fractions).unwrap_or(0);
                            self.containers[ci].class_pages[class].push(page);
                        }
                    }
                    Err(_) => stats.alloc_failed = true,
                }
            }
        }

        // 1b. Pathological file-cache churn (§5.1): write-once file
        // pages accumulate; pages the kernel has since evicted are
        // dropped for good (their content was replaced), page structs
        // and all. A scenario modulator can add a sidecar-tax spike on
        // top of the configured rate; with no modulator and no
        // configured churn this whole step is untouched dead code, so
        // the pre-scenario tick path stays byte-identical.
        let page_bytes = self.config.page_size.as_u64() as f64;
        let churn_pages_per_sec = self.containers[ci].churn_pages_per_sec
            + match &self.modulator {
                Some(m) => m.churn_bytes_per_sec(ci, now).as_u64() as f64 / page_bytes,
                None => 0.0,
            };
        if churn_pages_per_sec > 0.0 || !self.containers[ci].churn_pages.is_empty() {
            let want = churn_pages_per_sec * dt.as_secs_f64() + self.containers[ci].churn_carry;
            let n = want as u64;
            self.containers[ci].churn_carry = want - n as f64;
            if n > 0 {
                match self.mm.alloc_pages(cg, PageKind::File, n, now) {
                    Ok(out) => {
                        stats.mem_stall += out.reclaim_stall;
                        stats.stall += out.reclaim_stall;
                        self.containers[ci].churn_pages.extend(out.pages);
                    }
                    Err(_) => stats.alloc_failed = true,
                }
            }
            // Collect evicted churn pages.
            let mm = &self.mm;
            let (live, dead): (Vec<_>, Vec<_>) = self.containers[ci]
                .churn_pages
                .drain(..)
                .partition(|&p| mm.page(p).is_resident());
            self.containers[ci].churn_pages = live;
            if !dead.is_empty() {
                self.mm.free_pages_of(&dead);
            }
        }

        // 1c. Scenario memory leak: anonymous pages allocated and never
        // touched again — cold garbage that only a kill releases. The
        // controller should discover and offload it; an unmanaged host
        // eventually runs out of DRAM. No modulator ⇒ no code runs.
        let leak_pages_per_sec = match &self.modulator {
            Some(m) => m.leak_bytes_per_sec(ci, now).as_u64() as f64 / page_bytes,
            None => 0.0,
        };
        if leak_pages_per_sec > 0.0 {
            let want = leak_pages_per_sec * dt.as_secs_f64() + self.containers[ci].leak_carry;
            let n = want as u64;
            self.containers[ci].leak_carry = want - n as f64;
            if n > 0 {
                match self.mm.alloc_pages(cg, PageKind::Anon, n, now) {
                    Ok(out) => {
                        stats.mem_stall += out.reclaim_stall;
                        stats.stall += out.reclaim_stall;
                        self.containers[ci].leak_pages.extend(out.pages);
                    }
                    Err(_) => stats.alloc_failed = true,
                }
            }
        }

        // 2. Access stream. Web containers touch memory in proportion
        // to admitted load, floored at half intensity: even a throttled
        // server keeps executing its code and core data paths, which
        // prevents a throttle → "looks cold" → reclaim death spiral.
        let mut scale = self.containers[ci]
            .web
            .as_ref()
            .map(|w| (w.rps() / w.config().max_rps).max(0.5))
            .unwrap_or(1.0);
        if let Some(diurnal) = self.containers[ci].diurnal {
            scale *= diurnal.demand_fraction(now);
        }
        if let Some(m) = &self.modulator {
            scale *= m.demand_scale(ci, now);
        }
        let tick_index = (self.clock.ticks() - 1) as usize;
        // The plan buffer is scratch too: `plan_into` draws the RNG in
        // exactly the order `plan` did, so swapping in the reusing form
        // leaves every downstream draw untouched.
        let mut plan = std::mem::take(&mut self.scratch.plan);
        match &self.containers[ci].trace {
            Some(trace) if !trace.is_empty() => {
                plan.clear();
                plan.extend_from_slice(
                    trace.tick(tick_index % trace.len()).expect("index wrapped"),
                );
            }
            _ => self.containers[ci]
                .planner
                .plan_into(dt, &mut self.rng, &mut plan),
        }
        for (class, &count) in plan.iter().enumerate() {
            let count = (count as f64 * scale).round() as u64;
            if self.containers[ci].class_pages[class].is_empty() {
                continue;
            }
            // Draw every page id for the class up front — the index
            // draws consume `self.rng` in the same order as a
            // one-at-a-time loop — then fault the whole batch through
            // the mm's aggregating entry point, which short-circuits
            // resident pages and folds counters inline instead of
            // materializing an outcome per page.
            let mut ids = std::mem::take(&mut self.scratch.batch_ids);
            AccessPlanner::sample_batch_into(
                &self.containers[ci].class_pages[class],
                count,
                &mut self.rng,
                &mut ids,
            );
            let first_lat = swap_latencies.len();
            let batch = self.mm.access_batch_stats(&ids, now, swap_latencies);
            // Swap-in latencies feed the streaming estimators in the
            // same occurrence order as the former per-outcome loop.
            for &secs in &swap_latencies[first_lat..] {
                self.swap_lat_p50.observe(secs);
                self.swap_lat_p90.observe(secs);
                self.swap_lat_p99.observe(secs);
                self.swap_lat_mean.observe(secs);
            }
            stats.accesses += batch.accesses;
            stats.faults += batch.faults;
            stats.swapins += batch.swapins;
            stats.refaults += batch.refaults;
            stats.stall += batch.stall;
            stats.mem_stall += batch.mem_stall;
            stats.io_stall += batch.io_stall;
            self.scratch.batch_ids = ids;
        }
        self.scratch.plan = plan;
        stats.cpu_demand = self.config.access_cpu * stats.accesses;

        // 3. Web admission feedback. A request touches
        // `pages_per_request` pages, so its expected fault stall is the
        // per-access stall scaled by that count.
        if let Some(web) = self.containers[ci].web.as_mut() {
            let per_access = if stats.accesses > 0 {
                stats.stall.as_secs_f64() / stats.accesses as f64
            } else {
                0.0
            };
            let mean_stall =
                SimDuration::from_secs_f64(per_access * web.config().pages_per_request as f64);
            let headroom = if stats.alloc_failed {
                0.0
            } else {
                free_fraction
            };
            web.observe(mean_stall, headroom);
        }

        self.mm.set_reclaim_trigger(None);
        stats
    }

    /// Feeds one container's tick stalls into its PSI domain: each stall
    /// total is split evenly across the container's tasks, each share
    /// placed at an independent random offset within the tick so overlap
    /// (and thus `full`) emerges statistically rather than by
    /// construction. The spans go into two packed batches at once — the
    /// container's own (cleared here, observed at the end) and the
    /// machine-wide one the caller accumulates across containers — so
    /// neither domain allocates per-task observation structs. The RNG
    /// draw order and count are identical to the former per-observation
    /// form: one `below` draw per nonzero stall share, resources in
    /// (Memory, Io, Cpu) order per task.
    fn feed_psi(
        &mut self,
        ci: usize,
        stats: &TickStats,
        dt: SimDuration,
        container_batch: &mut SpanBatch,
        host_batch: &mut SpanBatch,
    ) {
        let tasks = self.containers[ci].profile.tasks.max(1) as u64;
        let window_ns = dt.as_nanos();
        // Every task gets the same per-resource share, so the divides
        // (and the min against the window) hoist out of the task loop;
        // only the `below` draws — one per task per nonzero share, in
        // the contract's (Memory, Io, Cpu) order — stay inside.
        let shares: [(Resource, u64, u64, u64); 3] = [
            (Resource::Memory, stats.mem_stall.as_nanos()),
            (Resource::Io, stats.io_stall.as_nanos()),
            (Resource::Cpu, stats.cpu_stall.as_nanos()),
        ]
        .map(|(r, total_ns)| {
            let share_ns = (total_ns / tasks).min(window_ns);
            let max_start = window_ns - share_ns;
            // Rejection threshold for the start draw, hoisted out of
            // the task loop (every task shares the bound).
            let threshold = if share_ns > 0 && max_start > 0 {
                tmo_sim::DetRng::below_threshold(max_start)
            } else {
                0
            };
            (r, share_ns, max_start, threshold)
        });
        container_batch.clear();
        for _ in 0..tasks {
            container_batch.push_non_idle_task();
            host_batch.push_non_idle_task();
            for (resource, share_ns, max_start, threshold) in shares {
                if share_ns > 0 {
                    let start = if max_start > 0 {
                        self.rng.below_with(max_start, threshold)
                    } else {
                        0
                    };
                    container_batch.push_span(resource, start, start + share_ns);
                    host_batch.push_span(resource, start, start + share_ns);
                }
            }
        }
        self.containers[ci].psi.observe_batch(dt, container_batch);
    }

    /// Resolves (and caches) the recorder handles for one container's
    /// per-tick series. The name formatting and B-tree lookups happen
    /// once per container per run; every later tick appends through the
    /// cached [`SeriesId`]s. The recorder's name index keeps observable
    /// output sorted by name regardless of resolution order.
    fn container_series(&mut self, ci: usize) -> ContainerSeriesIds {
        if let Some(ids) = self.containers[ci].series {
            return ids;
        }
        let name = &self.containers[ci].name;
        let rec = &mut self.recorder;
        let ids = ContainerSeriesIds {
            resident_mib: rec.series_id(&format!("{name}.resident_mib")),
            swap_mib: rec.series_id(&format!("{name}.swap_mib")),
            file_cache_mib: rec.series_id(&format!("{name}.file_cache_mib")),
            psi_mem_some10: rec.series_id(&format!("{name}.psi_mem_some10")),
            psi_io_some10: rec.series_id(&format!("{name}.psi_io_some10")),
            psi_cpu_some10: rec.series_id(&format!("{name}.psi_cpu_some10")),
            promotion_rate: rec.series_id(&format!("{name}.promotion_rate")),
            refault_rate: rec.series_id(&format!("{name}.refault_rate")),
            swapout_rate_mbps: rec.series_id(&format!("{name}.swapout_rate_mbps")),
            rps: self.containers[ci]
                .web
                .is_some()
                .then(|| rec.series_id(&format!("{name}.rps"))),
        };
        self.containers[ci].series = Some(ids);
        ids
    }

    fn record_tick(&mut self, now: SimTime, swap_latencies: &mut [f64]) {
        let page = self.config.page_size;
        for ci in 0..self.containers.len() {
            let ids = self.container_series(ci);
            let cg = self.containers[ci].cg;
            let stat = self.mm.cgroup_stat(cg);
            let psi = &self.containers[ci].psi;
            let psi_mem = psi.some_avg10(Resource::Memory) * 100.0;
            let psi_io = psi.some_avg10(Resource::Io) * 100.0;
            let psi_cpu = psi.some_avg10(Resource::Cpu) * 100.0;
            let rec = &mut self.recorder;
            rec.record_id(
                ids.resident_mib,
                now,
                stat.resident().to_bytes(page).as_mib(),
            );
            rec.record_id(
                ids.swap_mib,
                now,
                stat.anon_offloaded.to_bytes(page).as_mib(),
            );
            rec.record_id(
                ids.file_cache_mib,
                now,
                stat.file_resident.to_bytes(page).as_mib(),
            );
            rec.record_id(ids.psi_mem_some10, now, psi_mem);
            rec.record_id(ids.psi_io_some10, now, psi_io);
            rec.record_id(ids.psi_cpu_some10, now, psi_cpu);
            rec.record_id(ids.promotion_rate, now, stat.swapin_rate);
            rec.record_id(ids.refault_rate, now, stat.refault_rate);
            rec.record_id(
                ids.swapout_rate_mbps,
                now,
                stat.swapout_rate * page.as_u64() as f64 / 1e6,
            );
            if let (Some(rps_id), Some(web)) = (ids.rps, self.containers[ci].web.as_ref()) {
                rec.record_id(rps_id, now, web.rps());
            }
        }
        let machine_ids = match self.machine_series {
            Some(ids) => ids,
            None => {
                let has_swap_ssd = self.mm.swap_ssd().is_some();
                let rec = &mut self.recorder;
                let ids = MachineSeriesIds {
                    psi_mem_some10: rec.series_id("machine.psi_mem_some10"),
                    free_mib: rec.series_id("machine.free_mib"),
                    zswap_pool_mib: rec.series_id("machine.zswap_pool_mib"),
                    fs_read_iops: rec.series_id("fs.read_iops"),
                    swap_write_mbps: has_swap_ssd.then(|| rec.series_id("swap.write_mbps")),
                    swap_read_iops: has_swap_ssd.then(|| rec.series_id("swap.read_iops")),
                };
                self.machine_series = Some(ids);
                ids
            }
        };
        let g = self.mm.global_stat();
        self.recorder.record_id(
            machine_ids.psi_mem_some10,
            now,
            self.host_psi.some_avg10(Resource::Memory) * 100.0,
        );
        self.recorder
            .record_id(machine_ids.free_mib, now, g.free_bytes.as_mib());
        self.recorder
            .record_id(machine_ids.zswap_pool_mib, now, g.zswap_pool_bytes.as_mib());

        // Device rates.
        let fs_reads = self.mm.fs_device().stats().reads;
        let dt_secs = self.config.tick.as_secs_f64();
        self.recorder.record_id(
            machine_ids.fs_read_iops,
            now,
            (fs_reads - self.prev_fs_reads) as f64 / dt_secs,
        );
        self.prev_fs_reads = fs_reads;
        if let Some(swap) = self.mm.swap_ssd() {
            let write_mbps = swap.write_rate_mbps();
            let reads = swap.stats().reads;
            let write_id = machine_ids.swap_write_mbps.expect("cached with SSD swap");
            let read_id = machine_ids.swap_read_iops.expect("cached with SSD swap");
            self.recorder.record_id(write_id, now, write_mbps);
            self.recorder.record_id(
                read_id,
                now,
                (reads - self.prev_swap_reads) as f64 / dt_secs,
            );
            self.prev_swap_reads = reads;
        }
        if !swap_latencies.is_empty() {
            // Sorting the tick-local buffer in place is fine: it is
            // cleared at the start of the next tick and nothing reads
            // it again, so no observable order changes.
            swap_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p90 =
                swap_latencies[(swap_latencies.len() as f64 * 0.9) as usize % swap_latencies.len()];
            let id = match self.swap_p90_id {
                Some(id) => id,
                None => {
                    let id = self.recorder.series_id("swap.read_p90_ms");
                    self.swap_p90_id = Some(id);
                    id
                }
            };
            self.recorder.record_id(id, now, p90 * 1e3);
        }
    }

    /// Runs the machine (without any controller) for `duration`.
    pub fn run(&mut self, duration: SimDuration) {
        let deadline = self.clock.now() + duration;
        while self.clock.now() < deadline {
            self.tick();
        }
    }

    /// Assembles the Senpai view of one container.
    pub fn senpai_signal(&self, id: ContainerId) -> ContainerSignal {
        let c = &self.containers[id.0];
        let swap_write_mbps = self
            .mm
            .swap_ssd()
            .map(|s| s.write_rate_mbps())
            .unwrap_or(0.0);
        ContainerSignal {
            current_mem: self.mm.memory_current(c.cg),
            mem_some_avg10: c.psi.some_avg10(Resource::Memory),
            io_some_avg10: c.psi.some_avg10(Resource::Io),
            swap_write_mbps,
            swap_full: c.swap_full_seen,
            protected: c.protected,
            relaxed: c.relaxed,
            stale: false,
        }
    }

    /// The deterministic fate of this tick's telemetry read for a
    /// container — always `Fresh` when the run is fault-free.
    pub fn signal_fate(&self, id: ContainerId) -> SignalFate {
        match &self.host_faults {
            Some(hf) => hf.signal_fate(self.clock.ticks(), id.0 as u64),
            None => SignalFate::Fresh,
        }
    }

    /// The Senpai view of one container, subject to telemetry faults: a
    /// dropped read yields `None` (the controller must hold off), a
    /// stale read replays the last fresh sample with `stale` set so the
    /// controller knows not to act on it.
    pub fn senpai_signal_guarded(&mut self, id: ContainerId) -> Option<ContainerSignal> {
        if self.signal_cache.len() < self.containers.len() {
            self.signal_cache.resize(self.containers.len(), None);
        }
        match self.signal_fate(id) {
            SignalFate::Dropped => None,
            SignalFate::Stale => {
                let cached = self.signal_cache[id.0];
                let mut sig = cached.unwrap_or_else(|| self.senpai_signal(id));
                sig.stale = true;
                Some(sig)
            }
            SignalFate::Fresh => {
                let sig = self.senpai_signal(id);
                self.signal_cache[id.0] = Some(sig);
                Some(sig)
            }
        }
    }

    /// The oomd duress view of one container (§3.2.4): `full` memory
    /// pressure plus the swap-exhaustion, telemetry-staleness, and
    /// protection context a kill decision must respect.
    pub fn oomd_signal(&self, id: ContainerId) -> OomdSignal {
        let c = &self.containers[id.0];
        OomdSignal {
            full_avg10: c.psi.full_avg10(Resource::Memory),
            swap_full: c.swap_full_seen,
            stale: self.signal_fate(id) != SignalFate::Fresh,
            protected: c.protected,
        }
    }

    /// The promotion-rate view for the g-swap baseline.
    pub fn promotion_signal(&self, id: ContainerId) -> tmo_gswap::PromotionSignal {
        let c = &self.containers[id.0];
        tmo_gswap::PromotionSignal {
            current_mem: self.mm.memory_current(c.cg),
            promotion_rate: self.mm.cgroup_stat(c.cg).swapin_rate,
        }
    }

    /// Proactively reclaims `bytes` from a container (the
    /// `memory.reclaim` write) and records the volume.
    pub fn reclaim(&mut self, id: ContainerId, bytes: ByteSize) -> ReclaimOutcome {
        let c = &self.containers[id.0];
        let name = c.name.clone();
        let cg = c.cg;
        // Proactive reclaim is pressure the target applies to itself
        // (the controller probes *its* cold memory), so evictions here
        // self-attribute rather than blaming a neighbour.
        self.mm.set_reclaim_trigger(Some(cg));
        let outcome = self.mm.reclaim(cg, bytes);
        self.mm.set_reclaim_trigger(None);
        self.containers[id.0].swap_full_seen = outcome.swap_full;
        let now = self.clock.now();
        self.recorder
            .record(&format!("{name}.reclaim_mib"), now, bytes.as_mib());
        self.recorder.record(
            &format!("{name}.reclaimed_pages"),
            now,
            outcome.reclaimed().as_u64() as f64,
        );
        outcome
    }

    /// Derives the container's workingset profile from its recorded
    /// resident-size series, skipping the first `warmup_fraction` of the
    /// run (the controller is still discovering cold memory there).
    /// Returns `None` before any samples exist.
    pub fn workingset_profile(
        &self,
        id: ContainerId,
        warmup_fraction: f64,
    ) -> Option<WorkingsetProfile> {
        let name = self.containers[id.0].name.as_str();
        let series = self.recorder.series(&format!("{name}.resident_mib"))?;
        if series.is_empty() {
            return None;
        }
        let horizon = self.now().as_secs_f64();
        let from = horizon * warmup_fraction.clamp(0.0, 1.0);
        let steady: Vec<f64> = series
            .samples()
            .iter()
            .filter(|s| s.time_secs >= from)
            .map(|s| s.value)
            .collect();
        if steady.is_empty() {
            return None;
        }
        let mut sorted = steady.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Some(WorkingsetProfile {
            samples: steady.len(),
            min_mib: sorted[0],
            p50_mib: q(0.5),
            p95_mib: q(0.95),
            final_mib: *steady.last().expect("non-empty"),
        })
    }

    /// Kills a container (the §3.2.4 oomd action): frees every page it
    /// owns — resident, offloaded, and shadow entries — and stops its
    /// workload. The container id stays valid for inspection.
    pub fn kill_container(&mut self, id: ContainerId) {
        let mut pages: Vec<tmo_mm::PageId> = self.containers[id.0]
            .class_pages
            .iter()
            .flatten()
            .copied()
            .collect();
        pages.extend(self.containers[id.0].churn_pages.iter().copied());
        pages.extend(self.containers[id.0].leak_pages.iter().copied());
        self.mm.free_pages_of(&pages);
        let c = &mut self.containers[id.0];
        c.class_pages.iter_mut().for_each(Vec::clear);
        c.churn_pages.clear();
        c.churn_pages_per_sec = 0.0;
        c.leak_pages.clear();
        c.leak_carry = 0.0;
        c.alive = false;
        c.growth_remaining_pages = 0;
        let name = c.name.clone();
        let now = self.clock.now();
        self.recorder.record(&format!("{name}.killed"), now, 1.0);
    }

    /// Restarts a killed container (crash churn): reallocates its full
    /// class footprint and resumes its workload. Returns `true` on
    /// success; if the host cannot hold the footprint the container
    /// stays dead and the partial allocation is rolled back.
    pub fn restart_container(&mut self, id: ContainerId) -> bool {
        if self.containers[id.0].alive {
            return true;
        }
        let cg = self.containers[id.0].cg;
        let anon_fraction = self.containers[id.0].profile.anon_fraction;
        let per_class: Vec<u64> = self.containers[id.0].planner.pages_per_class().to_vec();
        let now = self.clock.now();
        // The restart's footprint re-allocation is this container's
        // demand; any reclaim it forces is attributed to it.
        self.mm.set_reclaim_trigger(Some(cg));
        let mut class_pages: Vec<Vec<tmo_mm::PageId>> = Vec::new();
        for &n in &per_class {
            let want_anon = (n as f64 * anon_fraction).round() as u64;
            let file_now = n - want_anon;
            let mut pages = Vec::with_capacity(n as usize);
            let mut failed = false;
            if want_anon > 0 {
                match self.mm.alloc_pages(cg, PageKind::Anon, want_anon, now) {
                    Ok(out) => pages.extend(out.pages),
                    Err(_) => failed = true,
                }
            }
            if !failed && file_now > 0 {
                match self.mm.alloc_pages(cg, PageKind::File, file_now, now) {
                    Ok(out) => pages.extend(out.pages),
                    Err(_) => failed = true,
                }
            }
            if failed {
                let mut allocated: Vec<tmo_mm::PageId> =
                    class_pages.iter().flatten().copied().collect();
                allocated.extend(pages);
                self.mm.free_pages_of(&allocated);
                self.mm.set_reclaim_trigger(None);
                return false;
            }
            class_pages.push(pages);
        }
        self.mm.set_reclaim_trigger(None);
        let c = &mut self.containers[id.0];
        c.class_pages = class_pages;
        c.alive = true;
        c.swap_full_seen = false;
        c.growth_remaining_pages = 0;
        let name = c.name.clone();
        self.recorder.record(&format!("{name}.restarted"), now, 1.0);
        true
    }

    /// Whether the container is still running.
    pub fn is_alive(&self, id: ContainerId) -> bool {
        self.containers[id.0].alive
    }

    /// Fraction of the container's initial resident footprint that is
    /// currently offloaded or freed — the savings metric of Figure 9.
    pub fn savings_fraction(&self, id: ContainerId) -> f64 {
        let c = &self.containers[id.0];
        let initial = c.initial_resident_pages;
        if initial == 0 {
            return 0.0;
        }
        let current = self.mm.cgroup_stat(c.cg).resident().as_u64();
        1.0 - current as f64 / initial as f64
    }

    /// DRAM the container's offloading actually frees for other use:
    /// offloaded bytes minus the container's share of the compressed
    /// pool's DRAM cost (apportioned over the pool actually in use, so
    /// pages a tiered backend demoted to SSD cost nothing). For pure
    /// SSD/NVM backends this equals the offloaded bytes.
    pub fn net_savings_bytes(&self, id: ContainerId) -> ByteSize {
        let c = &self.containers[id.0];
        let stat = self.mm.cgroup_stat(c.cg);
        let offloaded = stat.anon_offloaded.to_bytes(self.config.page_size);
        let evicted_file = stat.file_evicted.to_bytes(self.config.page_size);
        let gross = offloaded + evicted_file;
        let pool = self.mm.global_stat().zswap_pool_bytes;
        if pool.is_zero() {
            return gross;
        }
        // Apportion the pool's DRAM cost by each container's estimated
        // compressed footprint (offloaded bytes / compression ratio).
        let weight = |container: &Container| {
            let off = self
                .mm
                .cgroup_stat(container.cg)
                .anon_offloaded
                .to_bytes(self.config.page_size)
                .as_u64() as f64;
            off / container.profile.compress_ratio.max(1.0)
        };
        let total_weight: f64 = self.containers.iter().map(weight).sum();
        if total_weight <= 0.0 {
            return gross;
        }
        let pool_share = pool.mul_f64(weight(c) / total_weight);
        gross.saturating_sub(pool_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmo_workload::apps;

    fn small_profile() -> AppProfile {
        apps::feed().with_mem_total(ByteSize::from_mib(64))
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            ..MachineConfig::default()
        })
    }

    #[test]
    fn add_container_allocates_full_footprint() {
        let mut m = machine();
        let id = m.add_container(&small_profile());
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        // 64 MiB at 16 KiB pages = 4096 pages.
        assert_eq!(stat.resident().as_u64(), 4096);
        let anon_frac = stat.anon_resident.as_u64() as f64 / 4096.0;
        assert!((anon_frac - 0.65).abs() < 0.01, "anon {anon_frac}");
    }

    #[test]
    fn ticking_touches_hot_pages_and_builds_no_pressure() {
        let mut m = machine();
        let id = m.add_container(&small_profile());
        m.run(SimDuration::from_secs(30));
        let c = m.container(id);
        assert!(c.last_tick().accesses > 0);
        // Nothing was reclaimed: no faults, no pressure.
        assert_eq!(c.psi().some_avg10(Resource::Memory), 0.0);
        assert_eq!(m.savings_fraction(id), 0.0);
    }

    #[test]
    fn manual_reclaim_causes_savings_and_pressure_signal() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            ..MachineConfig::default()
        });
        let id = m.add_container(&small_profile());
        m.run(SimDuration::from_secs(5));
        // Aggressively reclaim a third of the container. With no
        // refaults yet, the TMO policy evicts file cache exclusively.
        m.reclaim(id, ByteSize::from_mib(20));
        assert!(m.savings_fraction(id) > 0.2);
        m.run(SimDuration::from_secs(30));
        // Hot file pages fault back: refaults and memory pressure.
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        assert!(stat.refaults_total > 0);
        assert!(m.container(id).psi().some_avg10(Resource::Memory) > 0.0);
        // And the savings shrink back toward the cold fraction.
        assert!(m.savings_fraction(id) < 0.33);
        // A second reclaim now sees a live refault rate, so the policy
        // balances onto anon and swap-outs begin (§3.4).
        m.reclaim(id, ByteSize::from_mib(20));
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        assert!(stat.swapouts_total > 0, "no anon offload after refaults");
    }

    #[test]
    fn web_container_ramps_rps_when_healthy() {
        let mut m = machine();
        let id = m.add_container_with(
            &small_profile(),
            ContainerConfig {
                web: Some(tmo_workload::WebServerConfig::default()),
                ..ContainerConfig::default()
            },
        );
        m.run(SimDuration::from_secs(60));
        let web = m.container(id).web().expect("web attached");
        assert!(web.rps() > 600.0, "rps {}", web.rps());
        assert!(m.recorder().series("Feed.rps").is_some());
    }

    #[test]
    fn growth_model_expands_anon_over_time() {
        let mut m = machine();
        let id = m.add_container_with(
            &small_profile(),
            ContainerConfig {
                anon_growth: Some(ByteSize::from_mib(1)), // 1 MiB/s
                anon_preload_fraction: 0.1,
                ..ContainerConfig::default()
            },
        );
        let cg = m.container(id).cgroup();
        let start = m.mm().cgroup_stat(cg).anon_resident;
        m.run(SimDuration::from_secs(20));
        let after = m.mm().cgroup_stat(cg).anon_resident;
        assert!(after > start, "{after:?} vs {start:?}");
        // ~20 MiB at 16 KiB pages = 1280 pages, +/- carry.
        let grown = (after - start).as_u64();
        assert!((1100..=1400).contains(&grown), "grown {grown}");
    }

    #[test]
    fn senpai_signal_reflects_container_state() {
        let mut m = machine();
        let id = m.add_container_with(
            &small_profile(),
            ContainerConfig {
                relaxed: true,
                ..ContainerConfig::default()
            },
        );
        m.run(SimDuration::from_secs(5));
        let sig = m.senpai_signal(id);
        assert!(sig.current_mem > ByteSize::ZERO);
        assert!(sig.relaxed);
        assert!(!sig.protected);
        assert_eq!(sig.mem_some_avg10, 0.0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut m = Machine::new(MachineConfig {
                dram: ByteSize::from_mib(256),
                swap: SwapKind::Ssd(SsdModel::C),
                seed: 7,
                ..MachineConfig::default()
            });
            let id = m.add_container(&small_profile());
            m.reclaim(id, ByteSize::from_mib(16));
            m.run(SimDuration::from_secs(20));
            let stat = m.mm().cgroup_stat(m.container(id).cgroup());
            (stat.swapins_total, stat.resident().as_u64())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recorder_has_standard_series() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Ssd(SsdModel::B),
            ..MachineConfig::default()
        });
        m.add_container(&small_profile());
        m.run(SimDuration::from_secs(2));
        for series in [
            "Feed.resident_mib",
            "Feed.psi_mem_some10",
            "Feed.promotion_rate",
            "machine.free_mib",
            "fs.read_iops",
            "swap.write_mbps",
        ] {
            assert!(
                m.recorder().series(series).is_some(),
                "missing series {series}"
            );
        }
    }

    #[test]
    fn file_churn_grows_the_cache_until_reclaimed() {
        // The §5.1 anecdote: a self-extracting binary fills the file
        // cache with write-once pages.
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            ..MachineConfig::default()
        });
        let id = m.add_container_with(
            &small_profile(),
            ContainerConfig {
                file_churn: Some(ByteSize::from_mib(1)), // 1 MiB/s of junk
                ..ContainerConfig::default()
            },
        );
        let cg = m.container(id).cgroup();
        let before = m.mm().cgroup_stat(cg).file_resident;
        m.run(SimDuration::from_secs(60));
        let after = m.mm().cgroup_stat(cg).file_resident;
        // ~60 MiB of junk file cache accumulated on top of the profile.
        let grown = (after - before).to_bytes(m.config().page_size);
        assert!(grown >= ByteSize::from_mib(55), "churn grew only {grown}");
        // A proactive reclaim sweeps the never-read pages first; the
        // following ticks then drop their page structs entirely.
        m.reclaim(id, ByteSize::from_mib(60));
        m.run(SimDuration::from_secs(1));
        let junk_left = m.container(id).churn_pages.len() as u64;
        assert!(junk_left < 1000, "junk pages left: {junk_left}");
    }

    #[test]
    fn workingset_profile_reflects_controller_discovery() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            ..MachineConfig::default()
        });
        let id = m.add_container(&small_profile());
        assert!(m.workingset_profile(id, 0.5).is_none(), "no samples yet");
        let mut rt = crate::TmoRuntime::with_senpai(m, tmo_senpai::SenpaiConfig::accelerated(40.0));
        rt.run(SimDuration::from_mins(3));
        let m = rt.machine();
        let profile = m.workingset_profile(id, 0.5).expect("recorded");
        assert!(profile.samples > 100);
        // The discovered workingset sits below the 64 MiB footprint.
        assert!(profile.min_mib < 64.0);
        assert!(profile.p50_mib <= profile.p95_mib);
        assert!(profile.p95_mib <= 64.0 + 1e-9);
        // The recommendation adds headroom on top of p95.
        let rec = profile.recommended_mib(0.1);
        assert!((rec - profile.p95_mib * 1.1).abs() < 1e-9);
    }

    #[test]
    fn swap_latency_summary_tracks_the_backend() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Ssd(SsdModel::B), // ~5.2 ms p99 reads
            ..MachineConfig::default()
        });
        let id = m.add_container(&small_profile());
        assert_eq!(m.swap_latency_summary_ms(), (0.0, 0.0, 0.0, 0.0));
        // Force heavy churn so plenty of swap-ins happen.
        for _ in 0..10 {
            m.reclaim(id, ByteSize::from_mib(24));
            m.run(SimDuration::from_secs(10));
        }
        let (p50, p90, p99, mean) = m.swap_latency_summary_ms();
        assert!(p50 > 0.0);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(mean >= p50 * 0.3 && mean <= p99, "mean {mean}");
        // Device B's p99 is ~5.2 ms on an idle device.
        assert!((1.0..20.0).contains(&p99), "p99 {p99} ms");
    }

    #[test]
    fn cpu_pressure_appears_under_oversubscription() {
        // One CPU, enormous per-access cost: demand far exceeds capacity.
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            cpus: 1,
            access_cpu: SimDuration::from_millis(20),
            ..MachineConfig::default()
        });
        let id = m.add_container(&small_profile());
        m.run(SimDuration::from_secs(30));
        let cpu = m.container(id).psi().some_avg10(Resource::Cpu);
        assert!(cpu > 0.1, "cpu pressure {cpu}");
        // And an amply provisioned machine shows none.
        let mut calm = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            cpus: 32,
            ..MachineConfig::default()
        });
        let id = calm.add_container(&small_profile());
        calm.run(SimDuration::from_secs(30));
        assert_eq!(calm.container(id).psi().some_avg10(Resource::Cpu), 0.0);
    }

    #[test]
    fn kill_container_frees_everything() {
        let mut m = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            ..MachineConfig::default()
        });
        let id = m.add_container(&small_profile());
        m.reclaim(id, ByteSize::from_mib(8)); // some pages offloaded
        m.run(SimDuration::from_secs(5));
        assert!(m.is_alive(id));
        let free_before = m.free_fraction();
        m.kill_container(id);
        assert!(!m.is_alive(id));
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        assert_eq!(stat.resident().as_u64(), 0);
        assert_eq!(stat.anon_offloaded.as_u64(), 0);
        assert_eq!(m.mm().global_stat().zswap_pool_bytes, ByteSize::ZERO);
        assert!(m.free_fraction() > free_before);
        // Ticking a machine with a dead container is harmless.
        m.run(SimDuration::from_secs(5));
        assert_eq!(m.container(id).last_tick().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "zswap fraction")]
    fn bad_zswap_fraction_panics() {
        let _ = Machine::new(MachineConfig {
            swap: SwapKind::Zswap {
                capacity_fraction: 1.5,
                allocator: ZswapAllocator::Zsmalloc,
            },
            ..MachineConfig::default()
        });
    }

    fn faulted_machine(faults: FaultConfig) -> Machine {
        Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap: SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            },
            faults: Some(faults),
            ..MachineConfig::default()
        })
    }

    #[test]
    fn zero_intensity_faults_are_byte_identical_to_none() {
        let mut clean = machine();
        let mut off = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            faults: Some(FaultConfig::off()),
            ..MachineConfig::default()
        });
        let a = clean.add_container(&small_profile());
        let b = off.add_container(&small_profile());
        clean.run(SimDuration::from_secs(30));
        off.run(SimDuration::from_secs(30));
        assert_eq!(
            format!("{:?}", clean.mm().global_stat()),
            format!("{:?}", off.mm().global_stat())
        );
        assert_eq!(clean.savings_fraction(a), off.savings_fraction(b));
    }

    #[test]
    fn crash_churn_kills_and_restarts_containers() {
        // Crash roughly every tick so churn is guaranteed quickly.
        let mut m = faulted_machine(FaultConfig {
            intensity: 1.0,
            crash_per_min: 600.0,
            ..FaultConfig::off()
        });
        let id = m.add_container(&small_profile());
        m.run(SimDuration::from_secs(10));
        let name = m.container(id).name().to_string();
        let killed = m.recorder().series(&format!("{name}.killed"));
        let restarted = m.recorder().series(&format!("{name}.restarted"));
        assert!(killed.is_some_and(|s| !s.is_empty()), "no kills recorded");
        assert!(restarted.is_some_and(|s| !s.is_empty()), "no restarts");
        assert!(m.is_alive(id), "restart should leave the container live");
        assert!(m.container(id).last_tick().accesses > 0);
    }

    #[test]
    #[should_panic(expected = "injected host panic")]
    fn panic_faults_panic_the_host() {
        let mut m = faulted_machine(FaultConfig {
            intensity: 1.0,
            panic_per_min: 6000.0,
            ..FaultConfig::off()
        });
        m.add_container(&small_profile());
        m.run(SimDuration::from_secs(10));
    }

    #[test]
    fn guarded_signal_reads_follow_the_fault_schedule() {
        let faults = FaultConfig {
            intensity: 1.0,
            stale_signal_rate: 0.3,
            dropped_signal_rate: 0.2,
            ..FaultConfig::off()
        };
        let mut m = faulted_machine(faults);
        let id = m.add_container(&small_profile());
        let mut fresh = 0;
        let mut stale = 0;
        let mut dropped = 0;
        for _ in 0..200 {
            m.tick();
            match m.senpai_signal_guarded(id) {
                None => dropped += 1,
                Some(sig) if sig.stale => stale += 1,
                Some(_) => fresh += 1,
            }
        }
        assert!(fresh > 0, "no fresh reads");
        assert!(stale > 0, "no stale reads");
        assert!(dropped > 0, "no dropped reads");
        // The guarded read agrees with the raw fate draw each tick, and
        // the oomd view flags every non-fresh read as stale.
        for _ in 0..50 {
            m.tick();
            let fate = m.signal_fate(id);
            let guarded = m.senpai_signal_guarded(id);
            let oomd = m.oomd_signal(id);
            match fate {
                SignalFate::Fresh => {
                    assert!(guarded.is_some_and(|s| !s.stale));
                    assert!(!oomd.stale);
                }
                SignalFate::Stale => {
                    assert!(guarded.is_some_and(|s| s.stale));
                    assert!(oomd.stale);
                }
                SignalFate::Dropped => {
                    assert!(guarded.is_none());
                    assert!(oomd.stale);
                }
            }
        }
    }

    #[test]
    fn restart_after_manual_kill_reallocates_the_footprint() {
        let mut m = machine();
        let id = m.add_container(&small_profile());
        m.run(SimDuration::from_secs(2));
        m.kill_container(id);
        assert_eq!(
            m.mm()
                .cgroup_stat(m.container(id).cgroup())
                .resident()
                .as_u64(),
            0
        );
        assert!(m.restart_container(id));
        assert!(m.is_alive(id));
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        assert_eq!(stat.resident().as_u64(), 4096);
        m.run(SimDuration::from_secs(2));
        assert!(m.container(id).last_tick().accesses > 0);
    }
}
