//! Deterministic parallel fleet execution.
//!
//! The paper's headline numbers are fleet aggregates over millions of
//! hosts; the reproduction simulates a representative set of hosts and
//! aggregates their [`HostSavings`](crate::fleet::HostSavings). A
//! [`FleetRunner`] shards those per-host simulations across a worker
//! pool while keeping the output **bit-identical to a sequential run**:
//!
//! * every host's RNG seed is a pure function of
//!   `(experiment_seed, host_index)` via
//!   [`tmo_sim::derive_host_seed`] — no worker ever advances another
//!   host's stream;
//! * results are reduced in host-index order, so scheduling order
//!   cannot leak into the output;
//! * a panicking host surfaces as a [`FleetError`] naming the host
//!   instead of hanging or poisoning the pool — and the
//!   [`FleetRunner::run_collect`] family converts each panic into a
//!   per-host [`HostOutcome::Failed`] record while every surviving
//!   host's result is still reduced in index order (chaos experiments
//!   lose one host, not the fleet).
//!
//! Wall-clock accounting per shard is reported through [`FleetStats`]
//! so callers (the `repro --jobs N` CLI) can show where time went.
//!
//! # The allowlisted timing layer
//!
//! This module is the **only** place in the workspace allowed to read
//! the host clock (`Instant::now`), and the values it produces —
//! [`FleetStats`] wall/busy durations and the derived speedup — are
//! reporting-only: they flow exclusively to stderr via
//! [`FleetStats::summary_line`] and never into a `FleetSummary`,
//! experiment output, or anything else written to stdout, which must
//! stay a pure function of `(seed, host_index, tick)`. The three call
//! sites below carry `// lint: allow(wall-clock)` annotations; the
//! `tmo-lint` CI gate flags any new clock read anywhere else.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tmo_sim::derive_host_seed;

/// Per-host context handed to the simulation closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCtx {
    /// The host's index in `0..hosts`, which is also its position in the
    /// result vector.
    pub index: usize,
    /// The host's machine seed, derived from
    /// `(experiment_seed, host_index)`.
    pub seed: u64,
}

/// A host simulation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError {
    /// Index of the first (lowest-index) host that failed.
    pub host: usize,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet host {} panicked: {}", self.host, self.message)
    }
}

impl std::error::Error for FleetError {}

/// Outcome of one host in a [`FleetRunner::run_collect`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum HostOutcome<T> {
    /// The host ran to completion.
    Completed(T),
    /// The host panicked; the fleet carried on without it.
    Failed(FleetError),
}

impl<T> HostOutcome<T> {
    /// The completed result, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            HostOutcome::Completed(value) => Some(value),
            HostOutcome::Failed(_) => None,
        }
    }

    /// Consumes the outcome, yielding the completed result, if any.
    pub fn into_completed(self) -> Option<T> {
        match self {
            HostOutcome::Completed(value) => Some(value),
            HostOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the host panicked.
    pub fn failure(&self) -> Option<&FleetError> {
        match self {
            HostOutcome::Completed(_) => None,
            HostOutcome::Failed(e) => Some(e),
        }
    }

    /// Whether the host panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, HostOutcome::Failed(_))
    }
}

/// Where the wall-clock went during one fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Total hosts simulated.
    pub hosts: usize,
    /// Worker threads used (1 = sequential).
    pub jobs: usize,
    /// Hosts completed by each shard; sums to `hosts`.
    pub shard_hosts: Vec<usize>,
    /// Wall-clock each shard spent inside host simulations.
    pub shard_busy: Vec<Duration>,
    /// End-to-end wall-clock of the run, including merge.
    pub wall: Duration,
}

impl FleetStats {
    /// Sum of per-shard busy time — the sequential-equivalent cost.
    pub fn total_busy(&self) -> Duration {
        self.shard_busy.iter().sum()
    }

    /// Parallel speedup actually achieved: busy time over wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        self.total_busy().as_secs_f64() / self.wall.as_secs_f64()
    }

    /// One-line human summary, e.g. for experiment output footers.
    pub fn summary_line(&self) -> String {
        let shards: Vec<String> = self
            .shard_hosts
            .iter()
            .zip(&self.shard_busy)
            .map(|(hosts, busy)| format!("{hosts} hosts/{:.2}s", busy.as_secs_f64()))
            .collect();
        format!(
            "fleet: {} hosts on {} worker(s) in {:.2}s ({:.2}x speedup) [{}]",
            self.hosts,
            self.jobs,
            self.wall.as_secs_f64(),
            self.speedup(),
            shards.join(", ")
        )
    }
}

/// Shards per-host simulations across a worker pool with deterministic,
/// host-index-ordered reduction.
///
/// # Determinism
///
/// For a fixed `(experiment_seed, hosts, f)`, the result vector is
/// bit-identical for every `jobs` value: seeds depend only on the host
/// index, and results are merged by host index. The closure `f` must
/// itself be a pure function of its [`HostCtx`] (true for `Machine`
/// simulations, which draw only from their seeded [`tmo_sim::DetRng`]).
///
/// # Example
///
/// ```
/// use tmo::runner::FleetRunner;
///
/// let parallel = FleetRunner::new(4);
/// let sequential = FleetRunner::sequential();
/// let f = |host: tmo::runner::HostCtx| host.seed.wrapping_mul(host.index as u64 + 1);
/// assert_eq!(
///     parallel.run_seeded(7, 100, f),
///     sequential.run_seeded(7, 100, f),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FleetRunner {
    jobs: usize,
}

impl Default for FleetRunner {
    /// A runner sized to the machine (`available_parallelism`).
    fn default() -> Self {
        FleetRunner::auto()
    }
}

impl FleetRunner {
    /// A runner with `jobs` worker threads. `jobs == 0` means "size to
    /// the machine", like `make -j`.
    pub fn new(jobs: usize) -> Self {
        if jobs == 0 {
            return FleetRunner::auto();
        }
        FleetRunner { jobs }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        FleetRunner { jobs }
    }

    /// The degenerate single-worker runner: runs hosts inline on the
    /// calling thread, in order.
    pub fn sequential() -> Self {
        FleetRunner { jobs: 1 }
    }

    /// Worker threads this runner will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The machine seed for `host_index` under `experiment_seed` — the
    /// exact mapping `run_seeded` uses.
    pub fn host_seed(experiment_seed: u64, host_index: usize) -> u64 {
        derive_host_seed(experiment_seed, host_index as u64)
    }

    /// Runs `hosts` simulations with seeds derived from
    /// `experiment_seed`, returning results in host-index order.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-index) host panic, naming the host.
    pub fn run_seeded<T, F>(&self, experiment_seed: u64, hosts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        match self.try_run_seeded(experiment_seed, hosts, f) {
            Ok((results, _)) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`FleetRunner::run_seeded`], but also returns shard stats
    /// and surfaces host panics as a [`FleetError`].
    pub fn try_run_seeded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        self.execute(hosts, f, move |index| {
            FleetRunner::host_seed(experiment_seed, index)
        })
    }

    /// Runs `hosts` index-only shards (no seed derivation) in
    /// host-index order — for fan-out over heterogeneous work items that
    /// carry their own seeds.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-index) host panic, naming the host.
    pub fn run<T, F>(&self, hosts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(hosts, f) {
            Ok((results, _)) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`FleetRunner::run`], but also returns shard stats and
    /// surfaces host panics as a [`FleetError`].
    pub fn try_run<T, F>(&self, hosts: usize, f: F) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.execute(hosts, move |ctx| f(ctx.index), |index| index as u64)
    }

    /// Runs `hosts` index-only shards and returns **all** per-host
    /// outcomes in host-index order: surviving hosts as
    /// [`HostOutcome::Completed`], panicked hosts as
    /// [`HostOutcome::Failed`]. One bad host no longer discards the
    /// rest of the fleet's work.
    pub fn run_collect<T, F>(&self, hosts: usize, f: F) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.execute_collect(hosts, move |ctx| f(ctx.index), |index| index as u64)
    }

    /// Like [`FleetRunner::run_collect`] with seeds derived from
    /// `experiment_seed` — the chaos-experiment entry point: injected
    /// host panics become per-host failure records while every
    /// surviving host's result is still reduced in index order.
    pub fn run_collect_seeded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        self.execute_collect(hosts, f, move |index| {
            FleetRunner::host_seed(experiment_seed, index)
        })
    }

    /// The fail-fast API, built on the collect engine: completed
    /// results are returned only when every host survived; otherwise
    /// the lowest-index failure is the error.
    fn execute<T, F, S>(
        &self,
        hosts: usize,
        f: F,
        seed_of: S,
    ) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
        S: Fn(usize) -> u64 + Sync,
    {
        let (outcomes, stats) = self.execute_collect(hosts, f, seed_of);
        let mut results = Vec::with_capacity(hosts);
        let mut first_error: Option<FleetError> = None;
        // Outcomes are in index order, so the first failure seen is the
        // lowest-index one.
        for outcome in outcomes {
            match outcome {
                HostOutcome::Completed(value) => results.push(value),
                HostOutcome::Failed(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok((results, stats)),
        }
    }

    /// The single fleet engine: every host index runs exactly once and
    /// produces exactly one outcome, merged in host-index order.
    ///
    /// This is the allowlisted timing layer (see the module docs): the
    /// clippy exemption below and the per-site `lint: allow` comments
    /// cover the same three `Instant::now` reads, whose values are
    /// reported to stderr only.
    #[allow(clippy::disallowed_methods)]
    fn execute_collect<T, F, S>(
        &self,
        hosts: usize,
        f: F,
        seed_of: S,
    ) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
        S: Fn(usize) -> u64 + Sync,
    {
        let start = Instant::now(); // lint: allow(wall-clock) stderr-only speedup reporting via FleetStats::summary_line
        let jobs = self.jobs.min(hosts).max(1);
        let run_host = |index: usize| -> HostOutcome<T> {
            let ctx = HostCtx {
                index,
                seed: seed_of(index),
            };
            match catch_unwind(AssertUnwindSafe(|| f(ctx))) {
                Ok(value) => HostOutcome::Completed(value),
                Err(payload) => HostOutcome::Failed(FleetError {
                    host: index,
                    message: panic_message(payload.as_ref()),
                }),
            }
        };

        if jobs == 1 {
            let mut outcomes = Vec::with_capacity(hosts);
            let mut busy = Duration::ZERO;
            for index in 0..hosts {
                let host_start = Instant::now(); // lint: allow(wall-clock) stderr-only per-shard busy accounting
                outcomes.push(run_host(index));
                busy += host_start.elapsed();
            }
            let stats = FleetStats {
                hosts,
                jobs: 1,
                shard_hosts: vec![hosts],
                shard_busy: vec![busy],
                wall: start.elapsed(),
            };
            return (outcomes, stats);
        }

        // Work-stealing by atomic counter: each worker pulls the next
        // unclaimed host index. The *claim* order is scheduling-
        // dependent, but seeds depend only on the index and the merge
        // below restores index order, so results are not. Failures do
        // not stop a worker: in chaos runs a panicking host is routine,
        // and the rest of the fleet must still be simulated.
        let next = AtomicUsize::new(0);
        let shards: Vec<ShardOutcome<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    let next = &next;
                    let run_host = &run_host;
                    scope.spawn(move || {
                        let mut completed = Vec::new();
                        let mut busy = Duration::ZERO;
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= hosts {
                                break;
                            }
                            let host_start = Instant::now(); // lint: allow(wall-clock) stderr-only per-shard busy accounting
                            let outcome = run_host(index);
                            busy += host_start.elapsed();
                            completed.push((index, outcome));
                        }
                        ShardOutcome { completed, busy }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panics are caught per host"))
                .collect()
        });

        let mut stats = FleetStats {
            hosts,
            jobs,
            shard_hosts: Vec::with_capacity(jobs),
            shard_busy: Vec::with_capacity(jobs),
            wall: Duration::ZERO,
        };
        let mut slots: Vec<Option<HostOutcome<T>>> = (0..hosts).map(|_| None).collect();
        for shard in shards {
            stats.shard_hosts.push(shard.completed.len());
            stats.shard_busy.push(shard.busy);
            for (index, outcome) in shard.completed {
                slots[index] = Some(outcome);
            }
        }
        let outcomes = slots
            .into_iter()
            .map(|slot| slot.expect("every host index was claimed exactly once"))
            .collect();
        stats.wall = start.elapsed();
        (outcomes, stats)
    }
}

struct ShardOutcome<T> {
    completed: Vec<(usize, HostOutcome<T>)>,
    busy: Duration,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_host_index_order_with_hosts_far_exceeding_workers() {
        let runner = FleetRunner::new(4);
        let (results, stats) = runner
            .try_run(257, |index| index * 3)
            .expect("no host panics");
        assert_eq!(results, (0..257).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(stats.hosts, 257);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.shard_hosts.iter().sum::<usize>(), 257);
        assert_eq!(stats.shard_busy.len(), 4);
    }

    #[test]
    fn jobs_one_degenerate_case_matches_parallel() {
        let f = |host: HostCtx| (host.index, host.seed, host.seed % 7);
        let sequential = FleetRunner::sequential().run_seeded(11, 40, f);
        let parallel = FleetRunner::new(8).run_seeded(11, 40, f);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn jobs_zero_sizes_to_the_machine() {
        assert!(FleetRunner::new(0).jobs() >= 1);
        assert_eq!(FleetRunner::new(0).jobs(), FleetRunner::auto().jobs());
    }

    #[test]
    fn seeds_are_per_host_and_independent_of_jobs() {
        let seeds_seq = FleetRunner::sequential().run_seeded(42, 16, |h| h.seed);
        let seeds_par = FleetRunner::new(4).run_seeded(42, 16, |h| h.seed);
        assert_eq!(seeds_seq, seeds_par);
        for (index, seed) in seeds_seq.iter().enumerate() {
            assert_eq!(*seed, FleetRunner::host_seed(42, index));
        }
        let mut unique = seeds_seq.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds_seq.len(), "host seeds must not collide");
    }

    #[test]
    fn panicking_host_surfaces_an_error_instead_of_hanging() {
        let runner = FleetRunner::new(4);
        let err = runner
            .try_run(64, |index| {
                if index == 13 {
                    panic!("boom on host 13");
                }
                index
            })
            .expect_err("host 13 panicked");
        assert_eq!(err.host, 13);
        assert!(err.message.contains("boom"), "message: {}", err.message);
    }

    #[test]
    fn panicking_host_reports_lowest_index_sequentially_too() {
        let err = FleetRunner::sequential()
            .try_run(8, |index| {
                if index >= 2 {
                    panic!("late failure");
                }
                index
            })
            .expect_err("host 2 panicked");
        assert_eq!(err.host, 2);
        assert!(err.to_string().contains("host 2"));
    }

    #[test]
    fn run_panics_with_host_context() {
        let caught = std::panic::catch_unwind(|| {
            FleetRunner::new(2).run(4, |index| {
                if index == 1 {
                    panic!("kaput");
                }
                index
            })
        })
        .expect_err("propagates");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("host 1"), "message: {message}");
        assert!(message.contains("kaput"), "message: {message}");
    }

    #[test]
    fn run_collect_keeps_survivors_alongside_failures() {
        let (outcomes, stats) = FleetRunner::new(4).run_collect(64, |index| {
            if index % 10 == 3 {
                panic!("injected panic on host {index}");
            }
            index * 2
        });
        assert_eq!(outcomes.len(), 64);
        assert_eq!(stats.shard_hosts.iter().sum::<usize>(), 64);
        for (index, outcome) in outcomes.iter().enumerate() {
            if index % 10 == 3 {
                let e = outcome.failure().expect("failed host");
                assert_eq!(e.host, index);
                assert!(e.message.contains("injected panic"));
            } else {
                assert_eq!(outcome.completed(), Some(&(index * 2)));
            }
        }
        let survivors = outcomes.iter().filter(|o| !o.is_failed()).count();
        assert_eq!(survivors, 57);
    }

    #[test]
    fn run_collect_is_identical_for_any_worker_count() {
        let f = |h: HostCtx| {
            if h.index % 7 == 5 {
                panic!("chaos host {}", h.index);
            }
            h.seed
        };
        let (seq, _) = FleetRunner::sequential().run_collect_seeded(1300, 50, f);
        let (par, _) = FleetRunner::new(4).run_collect_seeded(1300, 50, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_hosts_is_fine() {
        let (results, stats) = FleetRunner::new(4).try_run(0, |i| i).expect("empty fleet");
        assert!(results.is_empty());
        assert_eq!(stats.hosts, 0);
        assert_eq!(stats.jobs, 1, "an empty fleet needs no workers");
    }

    #[test]
    fn stats_summary_line_mentions_hosts_and_workers() {
        let (_, stats) = FleetRunner::new(2).try_run(6, |i| i).expect("runs");
        let line = stats.summary_line();
        assert!(line.contains("6 hosts"), "line: {line}");
        assert!(line.contains("2 worker"), "line: {line}");
        assert_eq!(
            stats.total_busy(),
            stats.shard_busy.iter().sum::<Duration>()
        );
        assert!(stats.speedup() >= 0.0);
    }
}
