//! Deterministic parallel fleet execution, shard-chunked.
//!
//! The paper's headline numbers are fleet aggregates over millions of
//! hosts; the reproduction simulates a representative set of hosts and
//! aggregates their [`HostSavings`](crate::fleet::HostSavings). A
//! [`FleetRunner`] partitions those per-host simulations into
//! **contiguous shards** of host indices, farms the shards out to a
//! worker pool, and keeps the output **bit-identical to a sequential
//! run**:
//!
//! * every host's RNG seed is a pure function of
//!   `(experiment_seed, host_index)` via
//!   [`tmo_sim::derive_host_seed`] — no worker ever advances another
//!   host's stream;
//! * shards are contiguous, ascending index ranges produced by
//!   [`shard_plan`], and results are reduced in **shard-index order**,
//!   which — precisely because the ranges are contiguous and ascending
//!   — is host-index order. Scheduling order cannot leak into the
//!   output;
//! * each worker owns one [`ShardArena`] for its whole lifetime and
//!   reuses it for every host in every shard it claims. The arena
//!   carries only *allocation capacity* (see
//!   [`MachineScratch`](crate::machine::MachineScratch)), never values,
//!   so reuse is invisible to the simulation — an invariant pinned by
//!   the `arena_reuse` test suite;
//! * a panicking host surfaces as a [`FleetError`] naming the host
//!   instead of hanging or poisoning the pool — and the
//!   [`FleetRunner::run_collect`] family converts each panic into a
//!   per-host [`HostOutcome::Failed`] record while every surviving
//!   host's result is still reduced in index order (chaos experiments
//!   lose one host, not the fleet).
//!
//! # Why shards instead of one task per host
//!
//! The old engine pulled one host index at a time off an atomic
//! counter. At datacenter scale that means one claim, one clock pair,
//! and one result-vector push per host — per-host overhead that at 8
//! hosts actually made `--jobs 4` *slower* than `--jobs 1` in the
//! committed benchmark baseline. Shard chunking amortises all of it:
//! the unit of claiming, timing, and merging is `ceil(hosts /
//! (workers · k))` hosts (k = [`OVERSUBSCRIBE`], for tail balance),
//! and the per-host cost inside a shard is a plain indexed loop plus an
//! arena-recycled simulation.
//!
//! Worker counts are clamped to the machine ([`FleetRunner::new`]):
//! workers beyond `available_parallelism` cannot add throughput, only
//! spawn and contention overhead, and the output is bit-identical for
//! any worker count anyway. Determinism tests that must exercise the
//! multi-worker merge path even on a small machine use
//! [`FleetRunner::exact`].
//!
//! Wall-clock accounting per worker is reported through [`FleetStats`]
//! so callers (the `repro --jobs N` CLI) can show where time went.
//!
//! # The allowlisted timing layer
//!
//! This module is the **only** place in the workspace allowed to read
//! the host clock (`Instant::now`), and the values it produces —
//! [`FleetStats`] wall/busy durations and the derived speedup — are
//! reporting-only: they flow exclusively to stderr via
//! [`FleetStats::summary_line`] (and to the side-channel scaling report
//! file the `ext_paper_scale` experiment writes) and never into a
//! `FleetSummary`, experiment output, or anything else written to
//! stdout, which must stay a pure function of `(seed, host_index,
//! tick)`. The three call sites below carry `// lint: allow(wall-clock)`
//! annotations; the `tmo-lint` CI gate flags any new clock read
//! anywhere else.

use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tmo_sim::derive_host_seed;

use crate::machine::MachineScratch;

/// Shard-size oversubscription factor: each worker's fair share of the
/// fleet is split into this many shards, so a worker that drew a cheap
/// shard can steal another instead of idling at the tail.
pub const OVERSUBSCRIBE: usize = 4;

/// Shards smaller than this are not worth their claim/merge overhead;
/// [`shard_plan`] lifts the chunk size to this floor (capped at a
/// worker's fair share, so small fleets still spread across workers).
pub const MIN_SHARD_HOSTS: usize = 16;

/// Partitions `0..hosts` into contiguous, ascending, equal-size (except
/// the last) shards for `workers` workers at oversubscription factor
/// `oversubscribe`.
///
/// The chunk size is `ceil(hosts / (workers · oversubscribe))`, lifted
/// to [`MIN_SHARD_HOSTS`] (but never above a worker's fair share
/// `ceil(hosts / workers)`, and never below 1). The returned ranges are
/// an **exact cover** of `0..hosts`: concatenated in order they visit
/// every host index exactly once — the property the deterministic
/// merge relies on, pinned by the `shard_chunking` proptests.
pub fn shard_plan(hosts: usize, workers: usize, oversubscribe: usize) -> Vec<Range<usize>> {
    if hosts == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    let oversubscribe = oversubscribe.max(1);
    let slots = workers.saturating_mul(oversubscribe);
    let fair = hosts.div_ceil(workers);
    let chunk = hosts.div_ceil(slots).max(MIN_SHARD_HOSTS.min(fair)).max(1);
    let mut shards = Vec::with_capacity(hosts.div_ceil(chunk));
    let mut start = 0;
    while start < hosts {
        let end = hosts.min(start + chunk);
        shards.push(start..end);
        start = end;
    }
    shards
}

/// Per-host context handed to the simulation closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCtx {
    /// The host's index in `0..hosts`, which is also its position in the
    /// result vector.
    pub index: usize,
    /// The host's machine seed, derived from
    /// `(experiment_seed, host_index)`.
    pub seed: u64,
}

/// Per-worker reusable state, threaded through every host a worker
/// simulates.
///
/// The arena's contents are strictly *capacity carriers*: a
/// [`MachineScratch`] parked here between hosts holds empty (scrubbed)
/// buffers whose heap allocations the next host adopts instead of
/// growing its own from zero. Nothing in an arena may influence a
/// host's result — host `i` run alone with a fresh arena and host `i`
/// run mid-shard behind a hundred other hosts must produce identical
/// outcomes (the `arena_reuse` tests enforce this, including under
/// fault injection).
///
/// If a host panics while holding the scratch, the scratch is simply
/// lost with it; [`ShardArena::take_scratch`] falls back to a fresh
/// default, so crash-churn schedules degrade allocation reuse, never
/// correctness.
#[derive(Debug, Default)]
pub struct ShardArena {
    scratch: Option<MachineScratch>,
}

impl ShardArena {
    /// An empty arena (no parked scratch).
    pub fn new() -> Self {
        ShardArena::default()
    }

    /// Takes the parked scratch, or a fresh default if none is parked
    /// (first host of a worker, or the previous host panicked while
    /// holding it).
    pub fn take_scratch(&mut self) -> MachineScratch {
        self.scratch.take().unwrap_or_default()
    }

    /// Parks a retired host's scratch for the next host to adopt.
    pub fn put_scratch(&mut self, scratch: MachineScratch) {
        self.scratch = Some(scratch);
    }

    /// Whether a scratch is currently parked.
    pub fn has_scratch(&self) -> bool {
        self.scratch.is_some()
    }
}

/// A host simulation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError {
    /// Index of the first (lowest-index) host that failed.
    pub host: usize,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet host {} panicked: {}", self.host, self.message)
    }
}

impl std::error::Error for FleetError {}

/// Outcome of one host in a [`FleetRunner::run_collect`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum HostOutcome<T> {
    /// The host ran to completion.
    Completed(T),
    /// The host panicked; the fleet carried on without it.
    Failed(FleetError),
}

impl<T> HostOutcome<T> {
    /// The completed result, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            HostOutcome::Completed(value) => Some(value),
            HostOutcome::Failed(_) => None,
        }
    }

    /// Consumes the outcome, yielding the completed result, if any.
    pub fn into_completed(self) -> Option<T> {
        match self {
            HostOutcome::Completed(value) => Some(value),
            HostOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the host panicked.
    pub fn failure(&self) -> Option<&FleetError> {
        match self {
            HostOutcome::Completed(_) => None,
            HostOutcome::Failed(e) => Some(e),
        }
    }

    /// Whether the host panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, HostOutcome::Failed(_))
    }
}

/// Where the wall-clock went during one fleet run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Total hosts simulated.
    pub hosts: usize,
    /// Worker threads used (1 = sequential).
    pub jobs: usize,
    /// Shards the fleet was partitioned into (see [`shard_plan`]).
    pub shards: usize,
    /// Hosts completed by each worker; sums to `hosts`.
    pub shard_hosts: Vec<usize>,
    /// Wall-clock each worker spent inside host simulations.
    pub shard_busy: Vec<Duration>,
    /// End-to-end wall-clock of the run, including merge.
    pub wall: Duration,
}

impl FleetStats {
    /// Sum of per-worker busy time — the sequential-equivalent cost.
    pub fn total_busy(&self) -> Duration {
        self.shard_busy.iter().sum()
    }

    /// Parallel speedup actually achieved: busy time over wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            return 1.0;
        }
        self.total_busy().as_secs_f64() / self.wall.as_secs_f64()
    }

    /// One-line human summary, e.g. for experiment output footers.
    pub fn summary_line(&self) -> String {
        let workers: Vec<String> = self
            .shard_hosts
            .iter()
            .zip(&self.shard_busy)
            .map(|(hosts, busy)| format!("{hosts} hosts/{:.2}s", busy.as_secs_f64()))
            .collect();
        format!(
            "fleet: {} hosts in {} shard(s) on {} worker(s) in {:.2}s ({:.2}x speedup) [{}]",
            self.hosts,
            self.shards,
            self.jobs,
            self.wall.as_secs_f64(),
            self.speedup(),
            workers.join(", ")
        )
    }
}

/// Shards per-host simulations across a worker pool with deterministic,
/// host-index-ordered reduction.
///
/// # Determinism
///
/// For a fixed `(experiment_seed, hosts, f)`, the result vector is
/// bit-identical for every `jobs` value: seeds depend only on the host
/// index, and shard results are merged in shard-index (= host-index)
/// order. The closure `f` must itself be a pure function of its
/// [`HostCtx`] (true for `Machine` simulations, which draw only from
/// their seeded [`tmo_sim::DetRng`]); the arena handed to the sharded
/// APIs carries allocation capacity only and must not influence
/// results.
///
/// # Example
///
/// ```
/// use tmo::runner::FleetRunner;
///
/// let parallel = FleetRunner::exact(4);
/// let sequential = FleetRunner::sequential();
/// let f = |host: tmo::runner::HostCtx| host.seed.wrapping_mul(host.index as u64 + 1);
/// assert_eq!(
///     parallel.run_seeded(7, 100, f),
///     sequential.run_seeded(7, 100, f),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FleetRunner {
    jobs: usize,
}

impl Default for FleetRunner {
    /// A runner sized to the machine (`available_parallelism`).
    fn default() -> Self {
        FleetRunner::auto()
    }
}

impl FleetRunner {
    /// A runner with at most `jobs` worker threads, clamped to the
    /// machine's available parallelism. `jobs == 0` means "size to the
    /// machine", like `make -j`.
    ///
    /// The clamp exists because workers beyond the core count cannot
    /// add throughput — results are bit-identical for any worker count,
    /// so extra threads buy only spawn and contention overhead. Tests
    /// that must exercise the multi-worker merge path regardless of the
    /// machine use [`FleetRunner::exact`].
    pub fn new(jobs: usize) -> Self {
        if jobs == 0 {
            return FleetRunner::auto();
        }
        FleetRunner {
            jobs: jobs.min(Self::machine_parallelism()),
        }
    }

    /// A runner with exactly `jobs` worker threads (at least 1), even
    /// if that oversubscribes the machine. Determinism tests use this
    /// to drive the real multi-worker claim/merge path on any host.
    pub fn exact(jobs: usize) -> Self {
        FleetRunner { jobs: jobs.max(1) }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        FleetRunner {
            jobs: Self::machine_parallelism(),
        }
    }

    /// The degenerate single-worker runner: runs hosts inline on the
    /// calling thread, in order.
    pub fn sequential() -> Self {
        FleetRunner { jobs: 1 }
    }

    fn machine_parallelism() -> usize {
        // lint: allow(determinism-taint) sizes the worker pool only; results are jobs-invariant (seed-stability gate pins --jobs 1 == --jobs N)
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker threads this runner will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The machine seed for `host_index` under `experiment_seed` — the
    /// exact mapping `run_seeded` uses.
    pub fn host_seed(experiment_seed: u64, host_index: usize) -> u64 {
        derive_host_seed(experiment_seed, host_index as u64)
    }

    /// Runs `hosts` simulations with seeds derived from
    /// `experiment_seed`, returning results in host-index order.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-index) host panic, naming the host.
    pub fn run_seeded<T, F>(&self, experiment_seed: u64, hosts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        match self.try_run_seeded(experiment_seed, hosts, f) {
            Ok((results, _)) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`FleetRunner::run_seeded`], but also returns worker stats
    /// and surfaces host panics as a [`FleetError`].
    pub fn try_run_seeded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        self.try_run_seeded_sharded(experiment_seed, hosts, move |ctx, _| f(ctx))
    }

    /// Arena-aware form of [`FleetRunner::run_seeded`]: the closure
    /// also receives its worker's [`ShardArena`], from which it can
    /// recycle [`MachineScratch`] buffers across the hosts of a shard.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-index) host panic, naming the host.
    pub fn run_seeded_sharded<T, F>(&self, experiment_seed: u64, hosts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(HostCtx, &mut ShardArena) -> T + Sync,
    {
        match self.try_run_seeded_sharded(experiment_seed, hosts, f) {
            Ok((results, _)) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Arena-aware form of [`FleetRunner::try_run_seeded`].
    pub fn try_run_seeded_sharded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(HostCtx, &mut ShardArena) -> T + Sync,
    {
        self.execute(hosts, f, move |index| {
            FleetRunner::host_seed(experiment_seed, index)
        })
    }

    /// Runs `hosts` index-only simulations (no seed derivation) in
    /// host-index order — for fan-out over heterogeneous work items that
    /// carry their own seeds.
    ///
    /// # Panics
    ///
    /// Propagates the first (lowest-index) host panic, naming the host.
    pub fn run<T, F>(&self, hosts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(hosts, f) {
            Ok((results, _)) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`FleetRunner::run`], but also returns worker stats and
    /// surfaces host panics as a [`FleetError`].
    pub fn try_run<T, F>(&self, hosts: usize, f: F) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.execute(hosts, move |ctx, _| f(ctx.index), |index| index as u64)
    }

    /// Runs `hosts` index-only simulations and returns **all** per-host
    /// outcomes in host-index order: surviving hosts as
    /// [`HostOutcome::Completed`], panicked hosts as
    /// [`HostOutcome::Failed`]. One bad host no longer discards the
    /// rest of the fleet's work.
    pub fn run_collect<T, F>(&self, hosts: usize, f: F) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.execute_collect(hosts, move |ctx, _| f(ctx.index), |index| index as u64)
    }

    /// Like [`FleetRunner::run_collect`] with seeds derived from
    /// `experiment_seed` — the chaos-experiment entry point: injected
    /// host panics become per-host failure records while every
    /// surviving host's result is still reduced in index order.
    pub fn run_collect_seeded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(HostCtx) -> T + Sync,
    {
        self.run_collect_seeded_sharded(experiment_seed, hosts, move |ctx, _| f(ctx))
    }

    /// Arena-aware form of [`FleetRunner::run_collect_seeded`].
    pub fn run_collect_seeded_sharded<T, F>(
        &self,
        experiment_seed: u64,
        hosts: usize,
        f: F,
    ) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(HostCtx, &mut ShardArena) -> T + Sync,
    {
        self.execute_collect(hosts, f, move |index| {
            FleetRunner::host_seed(experiment_seed, index)
        })
    }

    /// The fail-fast API, built on the collect engine: completed
    /// results are returned only when every host survived; otherwise
    /// the lowest-index failure is the error.
    fn execute<T, F, S>(
        &self,
        hosts: usize,
        f: F,
        seed_of: S,
    ) -> Result<(Vec<T>, FleetStats), FleetError>
    where
        T: Send,
        F: Fn(HostCtx, &mut ShardArena) -> T + Sync,
        S: Fn(usize) -> u64 + Sync,
    {
        let (outcomes, stats) = self.execute_collect(hosts, f, seed_of);
        let mut results = Vec::with_capacity(hosts);
        let mut first_error: Option<FleetError> = None;
        // Outcomes are in index order, so the first failure seen is the
        // lowest-index one.
        for outcome in outcomes {
            match outcome {
                HostOutcome::Completed(value) => results.push(value),
                HostOutcome::Failed(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok((results, stats)),
        }
    }

    /// The single fleet engine: the host range is partitioned by
    /// [`shard_plan`], workers claim whole shards off an atomic
    /// counter, every host index runs exactly once inside its shard,
    /// and shard results are concatenated in shard-index order — which,
    /// because shards are contiguous ascending ranges, is host-index
    /// order.
    ///
    /// This is the allowlisted timing layer (see the module docs): the
    /// clippy exemption below and the per-site `lint: allow` comments
    /// cover the same three `Instant::now` reads, whose values are
    /// reported to stderr only.
    #[allow(clippy::disallowed_methods)]
    fn execute_collect<T, F, S>(
        &self,
        hosts: usize,
        f: F,
        seed_of: S,
    ) -> (Vec<HostOutcome<T>>, FleetStats)
    where
        T: Send,
        F: Fn(HostCtx, &mut ShardArena) -> T + Sync,
        S: Fn(usize) -> u64 + Sync,
    {
        let start = Instant::now(); // lint: allow(wall-clock) stderr-only speedup reporting via FleetStats::summary_line
        let workers = self.jobs.min(hosts).max(1);
        let shards = shard_plan(hosts, workers, OVERSUBSCRIBE);
        let run_host = |index: usize, arena: &mut ShardArena| -> HostOutcome<T> {
            let ctx = HostCtx {
                index,
                seed: seed_of(index),
            };
            match catch_unwind(AssertUnwindSafe(|| f(ctx, arena))) {
                Ok(value) => HostOutcome::Completed(value),
                Err(payload) => HostOutcome::Failed(FleetError {
                    host: index,
                    message: panic_message(payload.as_ref()),
                }),
            }
        };

        if workers == 1 {
            // Inline on the calling thread: no spawn, one arena, hosts
            // already in index order.
            let mut arena = ShardArena::new();
            let mut outcomes = Vec::with_capacity(hosts);
            let busy_start = Instant::now(); // lint: allow(wall-clock) stderr-only per-worker busy accounting
            for index in 0..hosts {
                outcomes.push(run_host(index, &mut arena));
            }
            let stats = FleetStats {
                hosts,
                jobs: 1,
                shards: shards.len(),
                shard_hosts: vec![hosts],
                shard_busy: vec![busy_start.elapsed()],
                wall: start.elapsed(),
            };
            return (outcomes, stats);
        }

        // Work-stealing by atomic counter over *shards*: each worker
        // pulls the next unclaimed shard and runs its whole contiguous
        // host range against the worker's private arena. The *claim*
        // order is scheduling-dependent, but seeds depend only on the
        // host index and the merge below restores shard order, so
        // results are not. Failures do not stop a worker: in chaos runs
        // a panicking host is routine, and the rest of the fleet must
        // still be simulated.
        let shard_count = shards.len();
        let next = AtomicUsize::new(0);
        let per_worker: Vec<WorkerOutcome<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let shards = &shards;
                    let run_host = &run_host;
                    scope.spawn(move || {
                        let mut arena = ShardArena::new();
                        let mut completed: Vec<(usize, Vec<HostOutcome<T>>)> = Vec::new();
                        let mut hosts_done = 0usize;
                        let mut busy = Duration::ZERO;
                        loop {
                            let shard_index = next.fetch_add(1, Ordering::Relaxed);
                            if shard_index >= shard_count {
                                break;
                            }
                            let range = shards[shard_index].clone();
                            let shard_start = Instant::now(); // lint: allow(wall-clock) stderr-only per-worker busy accounting
                            let mut outcomes = Vec::with_capacity(range.len());
                            for index in range {
                                outcomes.push(run_host(index, &mut arena));
                            }
                            busy += shard_start.elapsed();
                            hosts_done += outcomes.len();
                            completed.push((shard_index, outcomes));
                        }
                        WorkerOutcome {
                            completed,
                            hosts: hosts_done,
                            busy,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panics are caught per host"))
                .collect()
        });

        let mut stats = FleetStats {
            hosts,
            jobs: workers,
            shards: shard_count,
            shard_hosts: Vec::with_capacity(workers),
            shard_busy: Vec::with_capacity(workers),
            wall: Duration::ZERO,
        };
        let mut slots: Vec<Option<Vec<HostOutcome<T>>>> = (0..shard_count).map(|_| None).collect();
        for worker in per_worker {
            stats.shard_hosts.push(worker.hosts);
            stats.shard_busy.push(worker.busy);
            for (shard_index, outcomes) in worker.completed {
                slots[shard_index] = Some(outcomes);
            }
        }
        let mut merged = Vec::with_capacity(hosts);
        for slot in slots {
            merged.extend(slot.expect("every shard index was claimed exactly once"));
        }
        stats.wall = start.elapsed();
        (merged, stats)
    }
}

struct WorkerOutcome<T> {
    /// Shard results this worker produced, tagged by shard index.
    completed: Vec<(usize, Vec<HostOutcome<T>>)>,
    /// Hosts simulated across all claimed shards.
    hosts: usize,
    /// Wall-clock spent inside host simulations.
    busy: Duration,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_host_index_order_with_hosts_far_exceeding_workers() {
        let runner = FleetRunner::exact(4);
        let (results, stats) = runner
            .try_run(257, |index| index * 3)
            .expect("no host panics");
        assert_eq!(results, (0..257).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(stats.hosts, 257);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.shards, shard_plan(257, 4, OVERSUBSCRIBE).len());
        assert_eq!(stats.shard_hosts.iter().sum::<usize>(), 257);
        assert_eq!(stats.shard_busy.len(), 4);
    }

    #[test]
    fn jobs_one_degenerate_case_matches_parallel() {
        let f = |host: HostCtx| (host.index, host.seed, host.seed % 7);
        let sequential = FleetRunner::sequential().run_seeded(11, 40, f);
        let parallel = FleetRunner::exact(8).run_seeded(11, 40, f);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn jobs_zero_sizes_to_the_machine() {
        assert!(FleetRunner::new(0).jobs() >= 1);
        assert_eq!(FleetRunner::new(0).jobs(), FleetRunner::auto().jobs());
    }

    #[test]
    fn new_clamps_to_machine_parallelism_and_exact_does_not() {
        let cores = FleetRunner::auto().jobs();
        assert!(FleetRunner::new(10_000).jobs() <= cores);
        assert_eq!(FleetRunner::exact(10_000).jobs(), 10_000);
        assert_eq!(FleetRunner::exact(0).jobs(), 1);
    }

    #[test]
    fn shard_plan_is_an_exact_contiguous_cover() {
        for &(hosts, workers) in &[
            (1usize, 1usize),
            (8, 4),
            (17, 4),
            (257, 4),
            (1000, 3),
            (100_000, 8),
        ] {
            let shards = shard_plan(hosts, workers, OVERSUBSCRIBE);
            let mut expected_start = 0;
            for shard in &shards {
                assert_eq!(shard.start, expected_start, "{hosts}/{workers}");
                assert!(shard.end > shard.start, "empty shard at {hosts}/{workers}");
                expected_start = shard.end;
            }
            assert_eq!(expected_start, hosts, "{hosts}/{workers}");
        }
        assert!(shard_plan(0, 4, OVERSUBSCRIBE).is_empty());
    }

    #[test]
    fn shard_plan_spreads_small_fleets_across_workers() {
        // 8 hosts / 4 workers: the MIN_SHARD_HOSTS floor must cap at the
        // fair share (2), not collapse the fleet into one 8-host shard.
        let shards = shard_plan(8, 4, OVERSUBSCRIBE);
        assert!(shards.len() >= 4, "shards: {shards:?}");
    }

    #[test]
    fn shard_plan_amortises_large_fleets() {
        // 100k hosts / 4 workers: chunks of ceil(100k/16) = 6250, i.e.
        // 16 shards — thousands of hosts per claim, not one.
        let shards = shard_plan(100_000, 4, OVERSUBSCRIBE);
        assert_eq!(shards.len(), 16);
        assert!(shards.iter().all(|s| s.len() >= 6_000));
    }

    #[test]
    fn seeds_are_per_host_and_independent_of_jobs() {
        let seeds_seq = FleetRunner::sequential().run_seeded(42, 16, |h| h.seed);
        let seeds_par = FleetRunner::exact(4).run_seeded(42, 16, |h| h.seed);
        assert_eq!(seeds_seq, seeds_par);
        for (index, seed) in seeds_seq.iter().enumerate() {
            assert_eq!(*seed, FleetRunner::host_seed(42, index));
        }
        let mut unique = seeds_seq.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds_seq.len(), "host seeds must not collide");
    }

    #[test]
    fn arena_is_threaded_through_every_host_of_a_worker() {
        // Count scratch handoffs: each host takes the scratch and puts
        // it back, so within one sequential worker the arena must carry
        // the same scratch through all hosts.
        let handoffs = FleetRunner::sequential().run_seeded_sharded(5, 10, |_ctx, arena| {
            let had = arena.has_scratch();
            let scratch = arena.take_scratch();
            arena.put_scratch(scratch);
            had
        });
        assert!(!handoffs[0], "first host starts with an empty arena");
        assert!(
            handoffs[1..].iter().all(|&had| had),
            "every later host inherits the parked scratch"
        );
    }

    #[test]
    fn panicking_host_surfaces_an_error_instead_of_hanging() {
        let runner = FleetRunner::exact(4);
        let err = runner
            .try_run(64, |index| {
                if index == 13 {
                    panic!("boom on host 13");
                }
                index
            })
            .expect_err("host 13 panicked");
        assert_eq!(err.host, 13);
        assert!(err.message.contains("boom"), "message: {}", err.message);
    }

    #[test]
    fn panicking_host_reports_lowest_index_sequentially_too() {
        let err = FleetRunner::sequential()
            .try_run(8, |index| {
                if index >= 2 {
                    panic!("late failure");
                }
                index
            })
            .expect_err("host 2 panicked");
        assert_eq!(err.host, 2);
        assert!(err.to_string().contains("host 2"));
    }

    #[test]
    fn run_panics_with_host_context() {
        let caught = std::panic::catch_unwind(|| {
            FleetRunner::exact(2).run(4, |index| {
                if index == 1 {
                    panic!("kaput");
                }
                index
            })
        })
        .expect_err("propagates");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("host 1"), "message: {message}");
        assert!(message.contains("kaput"), "message: {message}");
    }

    #[test]
    fn run_collect_keeps_survivors_alongside_failures() {
        let (outcomes, stats) = FleetRunner::exact(4).run_collect(64, |index| {
            if index % 10 == 3 {
                panic!("injected panic on host {index}");
            }
            index * 2
        });
        assert_eq!(outcomes.len(), 64);
        assert_eq!(stats.shard_hosts.iter().sum::<usize>(), 64);
        for (index, outcome) in outcomes.iter().enumerate() {
            if index % 10 == 3 {
                let e = outcome.failure().expect("failed host");
                assert_eq!(e.host, index);
                assert!(e.message.contains("injected panic"));
            } else {
                assert_eq!(outcome.completed(), Some(&(index * 2)));
            }
        }
        let survivors = outcomes.iter().filter(|o| !o.is_failed()).count();
        assert_eq!(survivors, 57);
    }

    #[test]
    fn run_collect_is_identical_for_any_worker_count() {
        let f = |h: HostCtx| {
            if h.index % 7 == 5 {
                panic!("chaos host {}", h.index);
            }
            h.seed
        };
        let (seq, _) = FleetRunner::sequential().run_collect_seeded(1300, 50, f);
        let (par, _) = FleetRunner::exact(4).run_collect_seeded(1300, 50, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn panic_mid_shard_loses_scratch_but_not_determinism() {
        // Host 5 panics while holding the scratch; host 6 must still run
        // and take_scratch must fall back to a default.
        let f = |ctx: HostCtx, arena: &mut ShardArena| {
            let scratch = arena.take_scratch();
            if ctx.index == 5 {
                panic!("dies holding the scratch");
            }
            arena.put_scratch(scratch);
            ctx.seed
        };
        let (seq, _) = FleetRunner::sequential().run_collect_seeded_sharded(9, 12, f);
        let (par, _) = FleetRunner::exact(3).run_collect_seeded_sharded(9, 12, f);
        assert_eq!(seq, par);
        assert!(seq[5].is_failed());
        assert_eq!(seq.iter().filter(|o| o.is_failed()).count(), 1);
    }

    #[test]
    fn poisoned_host_surfaces_its_payload_and_spares_its_shard() {
        // One shard (sequential runner, 6 hosts): host 2 panics with a
        // String payload, host 4 with a non-string payload. Every other
        // host in the same shard must still complete, and each failure
        // record must carry the best available message.
        let (outcomes, _) = FleetRunner::sequential().run_collect(6, |index| match index {
            2 => panic!("poisoned host {index}"),
            4 => std::panic::panic_any(index as u64),
            _ => index + 100,
        });
        assert_eq!(outcomes.len(), 6);
        let string_err = outcomes[2].failure().expect("host 2 failed");
        assert_eq!(string_err.host, 2);
        assert_eq!(string_err.message, "poisoned host 2");
        assert_eq!(
            string_err.to_string(),
            "fleet host 2 panicked: poisoned host 2"
        );
        let any_err = outcomes[4].failure().expect("host 4 failed");
        assert_eq!(any_err.message, "non-string panic payload");
        for index in [0, 1, 3, 5] {
            assert_eq!(
                outcomes[index].completed(),
                Some(&(index + 100)),
                "host {index} should have survived its shard-mates' panics"
            );
        }
    }

    #[test]
    fn zero_hosts_is_fine() {
        let (results, stats) = FleetRunner::exact(4)
            .try_run(0, |i| i)
            .expect("empty fleet");
        assert!(results.is_empty());
        assert_eq!(stats.hosts, 0);
        assert_eq!(stats.jobs, 1, "an empty fleet needs no workers");
        assert_eq!(stats.shards, 0);
    }

    #[test]
    fn stats_summary_line_mentions_hosts_and_workers() {
        let (_, stats) = FleetRunner::exact(2).try_run(40, |i| i).expect("runs");
        let line = stats.summary_line();
        assert!(line.contains("40 hosts"), "line: {line}");
        assert!(line.contains("2 worker"), "line: {line}");
        assert!(line.contains("shard"), "line: {line}");
        assert_eq!(
            stats.total_busy(),
            stats.shard_busy.iter().sum::<Duration>()
        );
        assert!(stats.speedup() >= 0.0);
    }
}
