//! Fleet-level aggregation.
//!
//! The paper's headline numbers are fleet aggregates: 20–32% of total
//! memory saved across millions of servers, of which 7–19% comes from
//! application containers and ~13% from the memory tax (Figures 9 and
//! 10). This module aggregates per-machine results into those shapes.

use tmo_sim::ByteSize;

use crate::container::ContainerId;
use crate::machine::Machine;

/// Savings attribution for one host.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostSavings {
    /// Total server memory.
    pub server_mem: ByteSize,
    /// DRAM freed from workload containers.
    pub workload_saved: ByteSize,
    /// DRAM freed from datacenter-tax containers.
    pub datacenter_tax_saved: ByteSize,
    /// DRAM freed from microservice-tax containers.
    pub microservice_tax_saved: ByteSize,
}

impl HostSavings {
    /// Total saved bytes.
    pub fn total_saved(&self) -> ByteSize {
        self.workload_saved + self.datacenter_tax_saved + self.microservice_tax_saved
    }

    /// Total savings as a fraction of server memory.
    pub fn total_fraction(&self) -> f64 {
        self.total_saved() / self.server_mem
    }

    /// Tax-only savings as a fraction of server memory (Figure 10's
    /// metric).
    pub fn tax_fraction(&self) -> f64 {
        (self.datacenter_tax_saved + self.microservice_tax_saved) / self.server_mem
    }
}

/// Classifies a container as workload / datacenter tax / microservice
/// tax by its profile name and sums each class's *net* savings (for
/// zswap backends the compressed pool cost is already deducted).
pub fn host_savings(machine: &Machine) -> HostSavings {
    let mut out = HostSavings {
        server_mem: machine.mm().global_stat().total_dram,
        ..HostSavings::default()
    };
    for id in machine.container_ids() {
        let saved = machine.net_savings_bytes(id);
        match machine.container(id).name() {
            "Datacenter Tax" => out.datacenter_tax_saved += saved,
            "Microservice Tax" => out.microservice_tax_saved += saved,
            _ => out.workload_saved += saved,
        }
    }
    out
}

/// Aggregates many hosts into fleet-mean fractions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetSummary {
    /// Mean total savings fraction.
    pub total_fraction: f64,
    /// Mean workload savings fraction.
    pub workload_fraction: f64,
    /// Mean datacenter-tax savings fraction.
    pub datacenter_tax_fraction: f64,
    /// Mean microservice-tax savings fraction.
    pub microservice_tax_fraction: f64,
    /// Number of hosts aggregated.
    pub hosts: usize,
}

/// Averages host savings over a fleet. Returns the default (zero)
/// summary for an empty slice.
pub fn summarize(hosts: &[HostSavings]) -> FleetSummary {
    if hosts.is_empty() {
        return FleetSummary::default();
    }
    let n = hosts.len() as f64;
    FleetSummary {
        total_fraction: hosts.iter().map(HostSavings::total_fraction).sum::<f64>() / n,
        workload_fraction: hosts
            .iter()
            .map(|h| h.workload_saved / h.server_mem)
            .sum::<f64>()
            / n,
        datacenter_tax_fraction: hosts
            .iter()
            .map(|h| h.datacenter_tax_saved / h.server_mem)
            .sum::<f64>()
            / n,
        microservice_tax_fraction: hosts
            .iter()
            .map(|h| h.microservice_tax_saved / h.server_mem)
            .sum::<f64>()
            / n,
        hosts: hosts.len(),
    }
}

/// Per-container savings normalised to the container's own resident
/// footprint, split by what was offloaded — the Figure 9 bar for one
/// application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSavings {
    /// Application name.
    pub name: String,
    /// Anonymous savings fraction (of initial resident size).
    pub anon_fraction: f64,
    /// File-backed savings fraction.
    pub file_fraction: f64,
}

impl AppSavings {
    /// Total savings fraction.
    pub fn total(&self) -> f64 {
        self.anon_fraction + self.file_fraction
    }
}

/// Computes the Figure 9 bar for one container: net DRAM freed (anon
/// offload minus zswap pool cost, plus evicted file cache) normalised to
/// the initial resident footprint.
pub fn app_savings(machine: &Machine, id: ContainerId) -> AppSavings {
    let c = machine.container(id);
    let stat = machine.mm().cgroup_stat(c.cgroup());
    let page = machine.config().page_size;
    let initial = ByteSize::new(machine.container(id).profile().mem_total.as_u64().max(1));
    let offloaded = stat.anon_offloaded.to_bytes(page);
    let anon_net = match machine.mm().swap_kind() {
        Some(tmo_backends::BackendKind::Zswap) => {
            offloaded.saturating_sub(offloaded.mul_f64(1.0 / c.profile().compress_ratio.max(1.0)))
        }
        _ => offloaded,
    };
    let file = stat.file_evicted.to_bytes(page);
    AppSavings {
        name: c.name().to_string(),
        anon_fraction: anon_net / initial,
        file_fraction: file / initial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(server_gib: u64, work: u64, dc: u64, micro: u64) -> HostSavings {
        HostSavings {
            server_mem: ByteSize::from_gib(server_gib),
            workload_saved: ByteSize::from_gib(work),
            datacenter_tax_saved: ByteSize::from_gib(dc),
            microservice_tax_saved: ByteSize::from_gib(micro),
        }
    }

    #[test]
    fn host_fractions() {
        let h = host(100, 10, 9, 4);
        assert!((h.total_fraction() - 0.23).abs() < 1e-9);
        assert!((h.tax_fraction() - 0.13).abs() < 1e-9);
    }

    #[test]
    fn summarize_averages() {
        let summary = summarize(&[host(100, 10, 9, 4), host(100, 20, 9, 4)]);
        assert_eq!(summary.hosts, 2);
        assert!((summary.workload_fraction - 0.15).abs() < 1e-9);
        assert!((summary.datacenter_tax_fraction - 0.09).abs() < 1e-9);
        assert!((summary.total_fraction - 0.28).abs() < 1e-9);
    }

    #[test]
    fn empty_fleet_is_zero() {
        let summary = summarize(&[]);
        assert_eq!(summary.hosts, 0);
        assert_eq!(summary.total_fraction, 0.0);
    }

    #[test]
    fn app_savings_total_sums_parts() {
        let s = AppSavings {
            name: "x".into(),
            anon_fraction: 0.08,
            file_fraction: 0.05,
        };
        assert!((s.total() - 0.13).abs() < 1e-12);
    }

    #[test]
    fn zero_server_mem_host_yields_zero_fractions_not_nan() {
        // A host whose MM reports no DRAM (e.g. a misconfigured or
        // still-provisioning machine) must not poison fleet means.
        let degenerate = HostSavings {
            server_mem: ByteSize::ZERO,
            workload_saved: ByteSize::from_mib(64),
            datacenter_tax_saved: ByteSize::from_mib(8),
            microservice_tax_saved: ByteSize::ZERO,
        };
        assert_eq!(degenerate.total_fraction(), 0.0);
        assert_eq!(degenerate.tax_fraction(), 0.0);
        let summary = summarize(&[degenerate, host(100, 10, 9, 4)]);
        assert!(summary.total_fraction.is_finite());
        assert!((summary.total_fraction - 0.23 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_host_summarize_is_that_hosts_fractions() {
        let h = host(128, 16, 8, 4);
        let summary = summarize(&[h]);
        assert_eq!(summary.hosts, 1);
        assert_eq!(summary.total_fraction, h.total_fraction());
        assert_eq!(summary.workload_fraction, h.workload_saved / h.server_mem);
        assert_eq!(
            summary.datacenter_tax_fraction,
            h.datacenter_tax_saved / h.server_mem
        );
        assert_eq!(
            summary.microservice_tax_fraction,
            h.microservice_tax_saved / h.server_mem
        );
    }

    fn offloading_machine(swap: crate::machine::SwapKind) -> (Machine, ContainerId) {
        use tmo_workload::apps;
        let dram = ByteSize::from_mib(128);
        let mut machine = Machine::new(crate::machine::MachineConfig {
            dram,
            swap,
            seed: 4242,
            ..crate::machine::MachineConfig::default()
        });
        let id = machine.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(64)));
        let runtime = crate::runtime::TmoRuntime::with_senpai(
            machine,
            tmo_senpai::SenpaiConfig::accelerated(40.0),
        );
        let mut runtime = runtime;
        runtime.run(tmo_sim::SimDuration::from_mins(2));
        (runtime.into_machine(), id)
    }

    #[test]
    fn app_savings_deducts_zswap_pool_cost() {
        let (machine, id) = offloading_machine(crate::machine::SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: tmo_backends::ZswapAllocator::Zsmalloc,
        });
        let c = machine.container(id);
        let stat = machine.mm().cgroup_stat(c.cgroup());
        let page = machine.config().page_size;
        let offloaded = stat.anon_offloaded.to_bytes(page);
        assert!(offloaded > ByteSize::ZERO, "senpai offloaded something");
        let initial = c.profile().mem_total;
        let ratio = c.profile().compress_ratio;
        assert!(ratio > 1.0);
        // Net accounting: the compressed pool still occupies
        // offloaded/ratio bytes of DRAM, so only the remainder counts.
        let expected = offloaded.saturating_sub(offloaded.mul_f64(1.0 / ratio)) / initial;
        let savings = app_savings(&machine, id);
        assert!(
            (savings.anon_fraction - expected).abs() < 1e-12,
            "anon {} vs expected {}",
            savings.anon_fraction,
            expected
        );
        // The deduction is material: strictly less than gross offload.
        assert!(savings.anon_fraction < offloaded / initial);
    }

    #[test]
    fn app_savings_counts_gross_offload_on_ssd() {
        let (machine, id) =
            offloading_machine(crate::machine::SwapKind::Ssd(tmo_backends::SsdModel::C));
        let c = machine.container(id);
        let stat = machine.mm().cgroup_stat(c.cgroup());
        let page = machine.config().page_size;
        let offloaded = stat.anon_offloaded.to_bytes(page);
        assert!(offloaded > ByteSize::ZERO, "senpai offloaded something");
        let savings = app_savings(&machine, id);
        let expected = offloaded / c.profile().mem_total;
        assert!(
            (savings.anon_fraction - expected).abs() < 1e-12,
            "ssd pages cost no DRAM: anon {} vs gross {}",
            savings.anon_fraction,
            expected
        );
    }
}
