//! Streaming statistics.
//!
//! Experiments track latency percentiles over long runs; storing every
//! sample is wasteful. [`P2Quantile`] implements the P² algorithm (Jain
//! & Chlamtac, 1985): a constant-space estimator that maintains five
//! markers and adjusts them with piecewise-parabolic interpolation.
//! [`Welford`] tracks mean/variance in constant space.

/// Streaming quantile estimator (the P² algorithm).
///
/// # Example
///
/// ```
/// use tmo_sim::stats::P2Quantile;
///
/// let mut p90 = P2Quantile::new(0.9);
/// for i in 1..=1000 {
///     p90.observe(i as f64);
/// }
/// let est = p90.value();
/// assert!((est - 900.0).abs() < 20.0, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Samples seen so far.
    count: u64,
    /// Initial buffer until five samples arrive.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile {q} out of (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The targeted quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one sample.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (h, v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = *v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for position in self.positions.iter_mut().skip(k + 1) {
            *position += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three middle markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + sign / (np - nm)
            * ((n - nm + sign) * (hp - h) / (np - n) + (np - n - sign) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. Before five samples arrive this is
    /// the nearest-rank quantile of what has been seen (0.0 when empty).
    pub fn value(&self) -> f64 {
        if self.initial.len() < 5 {
            if self.initial.is_empty() {
                return 0.0;
            }
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            let idx = ((sorted.len() - 1) as f64 * self.q).round() as usize;
            return sorted[idx];
        }
        self.heights[2]
    }
}

/// Welford's online mean/variance.
///
/// # Example
///
/// ```
/// use tmo_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.observe(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 4.571428).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Feeds one sample.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn p2_tracks_uniform_quantiles() {
        let mut rng = DetRng::seed_from_u64(1);
        for q in [0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(q);
            for _ in 0..50_000 {
                est.observe(rng.uniform());
            }
            let v = est.value();
            assert!((v - q).abs() < 0.02, "q={q} estimate {v}");
        }
    }

    #[test]
    fn p2_tracks_heavy_tailed_p90() {
        let mut rng = DetRng::seed_from_u64(2);
        let mut est = P2Quantile::new(0.9);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..50_000 {
            let x = rng.log_normal(1.0, 0.6);
            est.observe(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = all[(all.len() as f64 * 0.9) as usize];
        let rel = (est.value() - exact).abs() / exact;
        assert!(rel < 0.05, "estimate {} vs exact {exact}", est.value());
    }

    #[test]
    fn p2_small_sample_fallback() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.value(), 0.0);
        est.observe(3.0);
        est.observe(1.0);
        est.observe(2.0);
        assert_eq!(est.value(), 2.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn p2_constant_stream() {
        let mut est = P2Quantile::new(0.9);
        for _ in 0..1000 {
            est.observe(7.0);
        }
        assert_eq!(est.value(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let mut rng = DetRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.exponential(5.0)).collect();
        let mut w = Welford::new();
        for &x in &samples {
            w.observe(x);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() / var < 1e-9);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.observe(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
    }
}
