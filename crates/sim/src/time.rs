//! Simulated time types.
//!
//! All simulation time is tracked in integer nanoseconds so arithmetic is
//! exact and deterministic. [`SimTime`] is an instant (nanoseconds since
//! the start of the run); [`SimDuration`] is a span between instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the start
/// of the simulation run.
///
/// # Example
///
/// ```
/// use tmo_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_millis(), 2000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use tmo_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since run start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from seconds since run start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since run start, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since run start, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since run start, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since run start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `dur` after `self`, saturating at the maximum
    /// representable time.
    pub fn saturating_add(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(dur.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds, truncated.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that saturates at zero instead of panicking.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales this span by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(
            factor >= 0.0 && factor.is_finite(),
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two spans as a float; dividing by zero yields zero.
    type Output = f64;

    fn div(self, rhs: SimDuration) -> f64 {
        if rhs.0 == 0 {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn duration_ratio_division() {
        let a = SimDuration::from_millis(250);
        let b = SimDuration::from_secs(1);
        assert!((a / b - 0.25).abs() < 1e-12);
        assert_eq!(a / SimDuration::ZERO, 0.0);
    }

    #[test]
    fn saturating_operations_do_not_panic() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        let d = SimDuration::from_secs(1);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(40).to_string(), "40.000us");
        assert_eq!(SimDuration::from_millis(9).to_string(), "9.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
