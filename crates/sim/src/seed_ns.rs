//! The seed-namespace registry.
//!
//! Every independent deterministic draw stream in the simulator is
//! separated from the others by XORing a 64-bit *namespace* constant
//! into the seed it derives from. Two streams that accidentally share a
//! namespace are silently **correlated** — fault timing would mirror
//! scenario storms, or a scenario's kills would track the host's own
//! crash schedule — which corrupts experiments without failing any
//! determinism test (the runs are still bit-reproducible, just wrong).
//!
//! To make collisions impossible to introduce quietly, all namespace
//! constants live here, in one table, with two enforcement layers:
//!
//! * the unit test below asserts the registered values are pairwise
//!   distinct (and well-mixed: no zero, no duplicates under the
//!   host-seed derivation);
//! * `tmo-lint`'s `rng-namespace` rule statically rejects any
//!   `*_SEED_NS` constant declared outside this file, any unregistered
//!   `*_SEED_NS` identifier, and any raw literal XORed into a seed
//!   derivation (`FaultPlan::new` / `derive_host_seed` /
//!   `seed_from_u64`).
//!
//! To add a stream: define the constant here, add it to [`ALL`], and
//! re-export it from the crate that owns the stream.

/// Namespace for [`FaultPlan`](../../tmo_faults/struct.FaultPlan.html)
/// schedules: a host's fault draws never correlate with its workload
/// RNG streams, which hash the raw `(seed, host_index)`.
pub const FAULT_PLAN_SEED_NS: u64 = 0xFA17_FA17_FA17_FA17;

/// Namespace for the scenario engine's draw stream (`tmo-scenarios`):
/// storm kills and event jitter never correlate with the host's own
/// fault schedule, which hashes the un-namespaced seed.
pub const SCENARIO_SEED_NS: u64 = 0x5CE7_A210_0D1C_E5E5;

/// The registry table: every namespace constant, by name. The
/// `rng-namespace` lint rule parses this file and treats exactly these
/// constants as registered; the unit test below pins their uniqueness.
pub const ALL: &[(&str, u64)] = &[
    ("FAULT_PLAN_SEED_NS", FAULT_PLAN_SEED_NS),
    ("SCENARIO_SEED_NS", SCENARIO_SEED_NS),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_host_seed;

    #[test]
    fn registered_namespaces_are_globally_unique() {
        for (i, (name_a, val_a)) in ALL.iter().enumerate() {
            assert_ne!(*val_a, 0, "{name_a} must not be the identity namespace");
            for (name_b, val_b) in &ALL[i + 1..] {
                assert_ne!(
                    val_a, val_b,
                    "{name_a} and {name_b} collide: their draw streams would \
                     be identical, silently correlating supposedly independent \
                     randomness"
                );
            }
        }
    }

    #[test]
    fn table_matches_the_constants() {
        // A constant edited without its table row (or vice versa) is a
        // registry lie; the lint rule reads the table.
        assert_eq!(ALL[0], ("FAULT_PLAN_SEED_NS", FAULT_PLAN_SEED_NS));
        assert_eq!(ALL[1], ("SCENARIO_SEED_NS", SCENARIO_SEED_NS));
        assert_eq!(ALL.len(), 2);
    }

    #[test]
    fn namespaced_streams_decorrelate_under_host_derivation() {
        // The property the registry exists to protect: the same
        // (seed, host) under two different namespaces yields different
        // derived seeds, and under the same namespace identical ones.
        for seed in [0u64, 1, 900, u64::MAX] {
            for host in [0u64, 1, 63] {
                let a = derive_host_seed(seed ^ FAULT_PLAN_SEED_NS, host);
                let b = derive_host_seed(seed ^ SCENARIO_SEED_NS, host);
                assert_ne!(a, b, "seed {seed} host {host}");
            }
        }
    }
}
