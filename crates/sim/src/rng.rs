//! Deterministic random number generation and sampling distributions.
//!
//! Every stochastic component of the simulator draws from a [`DetRng`]
//! seeded at run construction, so two runs with the same seed are
//! bit-for-bit identical. The distributions the simulator needs
//! (exponential, log-normal, Zipf, Bernoulli) are implemented here from
//! first principles on top of the uniform generator so results do not
//! depend on external crates' sampling internals.

/// A seeded deterministic random number generator.
///
/// Internally a xoshiro256++ generator seeded through SplitMix64, plus
/// the sampling distributions used throughout the simulator. The
/// generator is implemented here (rather than delegating to an external
/// crate) so that simulation runs remain bit-for-bit reproducible across
/// dependency upgrades.
///
/// # Example
///
/// ```
/// use tmo_sim::DetRng;
///
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the machine seed for one host of a multi-host fleet from the
/// experiment-level seed and the host's index.
///
/// The mapping is a pure function of `(experiment_seed, host_index)` —
/// independent of worker count, scheduling order, or any RNG state — so
/// a fleet sharded over N threads draws exactly the same per-host
/// streams as a sequential run. Two SplitMix64 steps mix each input so
/// that neighbouring hosts (and neighbouring experiment seeds) get
/// decorrelated streams.
///
/// # Example
///
/// ```
/// use tmo_sim::rng::derive_host_seed;
///
/// assert_eq!(derive_host_seed(900, 3), derive_host_seed(900, 3));
/// assert_ne!(derive_host_seed(900, 3), derive_host_seed(900, 4));
/// assert_ne!(derive_host_seed(900, 3), derive_host_seed(901, 3));
/// ```
pub fn derive_host_seed(experiment_seed: u64, host_index: u64) -> u64 {
    let mut state = experiment_seed;
    let mixed_experiment = splitmix64(&mut state);
    let mut state = host_index ^ mixed_experiment.rotate_left(17);
    splitmix64(&mut state) ^ mixed_experiment
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each
    /// container / device its own stream so adding one component does not
    /// perturb the draws of another.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from_u64(seed)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "invalid range [{lo}, {hi})");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection method. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.below_with(n, Self::below_threshold(n))
    }

    /// The rejection threshold [`DetRng::below`] derives for bound `n`.
    /// The `%` here is the one hardware divide in a draw; a loop making
    /// many draws with the same bound should compute it once and call
    /// [`DetRng::below_with`], which consumes the generator identically.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n == 0`.
    pub fn below_threshold(n: u64) -> u64 {
        debug_assert!(n > 0, "threshold of empty range");
        n.wrapping_neg() % n
    }

    /// [`DetRng::below`] with the rejection threshold precomputed by
    /// [`DetRng::below_threshold`]: same draws, same rejections, same
    /// value — bit-identical to the single-call form.
    pub fn below_with(&mut self, n: u64, threshold: u64) -> u64 {
        debug_assert_eq!(threshold, Self::below_threshold(n), "stale threshold");
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed value with the given mean (inverse
    /// transform sampling). Returns 0 for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box-Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normally distributed value parameterised by the *median* and a
    /// shape parameter `sigma` (the sigma of the underlying normal).
    ///
    /// Device latency tails in the simulator are modelled as log-normal
    /// because empirical SSD latency distributions are heavy-tailed.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        if median <= 0.0 {
            return 0.0;
        }
        median * (sigma * self.standard_normal()).exp()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation for
    /// large ones (mean > 64), which is accurate enough for access-count
    /// sampling.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = mean + mean.sqrt() * self.standard_normal();
            return v.round().max(0.0) as u64;
        }
        let limit = (-mean).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Samples an index in `[0, weights.len())` proportionally to the
    /// (non-negative) weights. Returns `None` if the weights are empty or
    /// all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if target < *w {
                    return Some(i);
                }
                target -= *w;
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

/// A precomputed Zipf sampler over ranks `0..n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^s`. Sampling is `O(log n)` via binary search on the
/// cumulative distribution.
///
/// # Example
///
/// ```
/// use tmo_sim::DetRng;
/// use tmo_sim::rng::Zipf;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = DetRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(s >= 0.0 && s.is_finite(), "invalid zipf skew {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 0-based rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(123);
        let mut b = DetRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_produces_independent_deterministic_streams() {
        let mut root1 = DetRng::seed_from_u64(9);
        let mut root2 = DetRng::seed_from_u64(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = root1.fork(2);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn poisson_mean_is_close_small_and_large() {
        let mut rng = DetRng::seed_from_u64(6);
        for target in [0.5, 4.0, 100.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(target) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() < target.max(1.0) * 0.07,
                "target {target} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn log_normal_median_is_close() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut vals: Vec<f64> = (0..20_001).map(|_| rng.log_normal(100.0, 0.5)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = vals[vals.len() / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn chance_edges() {
        let mut rng = DetRng::seed_from_u64(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::seed_from_u64(9);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).expect("positive weights")] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = DetRng::seed_from_u64(10);
        let mut rank0 = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        // P(rank 0) = 1/H_100 ~= 0.1928
        let p0 = rank0 as f64 / n as f64;
        assert!((p0 - 0.1928).abs() < 0.02, "p0 {p0}");
    }

    #[test]
    fn zipf_uniform_when_skew_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = DetRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p {p}");
        }
    }

    #[test]
    #[should_panic(expected = "zipf over zero ranks")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
