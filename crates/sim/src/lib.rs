//! Discrete-time simulation substrate for the TMO reproduction.
//!
//! This crate provides the deterministic foundation the rest of the stack
//! is built on:
//!
//! * [`time`] — simulated wall-clock types ([`SimTime`], [`SimDuration`])
//!   with nanosecond resolution and saturating arithmetic.
//! * [`units`] — size newtypes ([`ByteSize`], [`PageCount`]) so byte
//!   quantities and page quantities cannot be confused.
//! * [`rng`] — a seeded, deterministic random number generator
//!   ([`DetRng`]) plus the sampling distributions the simulator needs
//!   (exponential, log-normal, Zipf, Bernoulli) implemented from scratch
//!   so runs are bit-for-bit reproducible.
//! * [`series`] — lightweight metric recording ([`Series`], [`Recorder`])
//!   used by every experiment to capture the per-tick signals that the
//!   paper's figures plot.
//! * [`stats`] — constant-space streaming statistics ([`P2Quantile`],
//!   [`Welford`]) for run-level percentiles and moments.
//! * [`clock`] — the simulation clock and fixed-step tick loop driver.
//!
//! # Example
//!
//! ```
//! use tmo_sim::{Clock, SimDuration};
//!
//! let mut clock = Clock::new(SimDuration::from_millis(100));
//! assert_eq!(clock.now().as_secs_f64(), 0.0);
//! clock.tick();
//! assert_eq!(clock.now().as_millis(), 100);
//! ```

pub mod clock;
pub mod rng;
pub mod seed_ns;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use clock::Clock;
pub use rng::{derive_host_seed, DetRng};
pub use series::{Recorder, Sample, Series, SeriesId};
pub use stats::{P2Quantile, Welford};
pub use time::{SimDuration, SimTime};
pub use units::{ByteSize, PageCount};
