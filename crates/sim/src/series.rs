//! Metric time series.
//!
//! Experiments record per-tick signals (RPS, resident memory, PSI, swap
//! rate, ...) into named [`Series`] collected by a [`Recorder`]. The
//! experiment harness then prints the same rows/series the paper's
//! figures plot, and can export them as CSV.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// One `(time, value)` sample of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time of the observation, in seconds since run start.
    pub time_secs: f64,
    /// Observed value.
    pub value: f64,
}

/// A named sequence of samples.
///
/// # Example
///
/// ```
/// use tmo_sim::{Series, SimTime};
///
/// let mut s = Series::new("rps");
/// s.push(SimTime::from_secs(1), 650.0);
/// s.push(SimTime::from_secs(2), 640.0);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean() - 645.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Series {
    name: String,
    samples: Vec<Sample>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample at `time`.
    pub fn push(&mut self, time: SimTime, value: f64) {
        self.samples.push(Sample {
            time_secs: time.as_secs_f64(),
            value,
        });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in insertion (time) order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over the values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// The final value, or `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|s| s.value)
    }

    /// Arithmetic mean of the values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.values().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum value (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.values()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Maximum value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.values()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// The `q`-quantile (0.0..=1.0) by nearest-rank on sorted values;
    /// returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut vals: Vec<f64> = self.values().collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let idx = ((vals.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        vals[idx]
    }

    /// Mean of the values whose sample time lies in `[from_secs, to_secs)`.
    pub fn mean_between(&self, from_secs: f64, to_secs: f64) -> f64 {
        let window: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.time_secs >= from_secs && s.time_secs < to_secs)
            .map(|s| s.value)
            .collect();
        if window.is_empty() {
            0.0
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        }
    }

    /// Downsamples to at most `n` evenly spaced samples (for printing).
    pub fn downsample(&self, n: usize) -> Vec<Sample> {
        if n == 0 || self.samples.is_empty() {
            return Vec::new();
        }
        if self.samples.len() <= n {
            return self.samples.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.samples[(i as f64 * step) as usize])
            .collect()
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Stable handle to one series inside a [`Recorder`].
///
/// Hot loops resolve a name to a `SeriesId` once and then append via
/// [`Recorder::record_id`], skipping the per-sample name lookup and the
/// `String` allocation `record` pays on every call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A collection of named series recorded during one simulation run.
///
/// Series live in insertion-ordered slots addressed by [`SeriesId`]; a
/// name index keeps every observable surface (`series`, `iter`,
/// `names`, `to_csv`) sorted by name exactly as before, so creation
/// order never leaks into output.
///
/// # Example
///
/// ```
/// use tmo_sim::{Recorder, SimTime};
///
/// let mut rec = Recorder::new();
/// rec.record("psi.some", SimTime::from_secs(6), 0.08);
/// let id = rec.series_id("psi.some");
/// rec.record_id(id, SimTime::from_secs(12), 0.10);
/// assert_eq!(rec.series("psi.some").expect("recorded").len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    index: BTreeMap<String, usize>,
    slots: Vec<Series>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Resolves the named series to a stable [`SeriesId`], creating an
    /// empty series on first use.
    pub fn series_id(&mut self, name: &str) -> SeriesId {
        if let Some(&slot) = self.index.get(name) {
            return SeriesId(slot);
        }
        let slot = self.slots.len();
        self.slots.push(Series::new(name));
        self.index.insert(name.to_string(), slot);
        SeriesId(slot)
    }

    /// Appends a sample to the series behind `id`.
    pub fn record_id(&mut self, id: SeriesId, time: SimTime, value: f64) {
        self.slots[id.0].push(time, value);
    }

    /// Appends a sample to the named series, creating it on first use.
    pub fn record(&mut self, name: &str, time: SimTime, value: f64) {
        let id = self.series_id(name);
        self.record_id(id, time, value);
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.index.get(name).map(|&slot| &self.slots[slot])
    }

    /// All series, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.index.values().map(|&slot| &self.slots[slot])
    }

    /// Names of all recorded series, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.index.keys().map(String::as_str).collect()
    }

    /// Merges another recorder's series in, prefixing their names.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Recorder) {
        for s in other.iter() {
            let name = format!("{prefix}.{}", s.name());
            let id = self.series_id(&name);
            for sample in s.samples() {
                self.slots[id.0].samples.push(*sample);
            }
        }
    }

    /// Renders all series as CSV (`series,time_secs,value` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time_secs,value\n");
        for s in self.iter() {
            for sample in s.samples() {
                out.push_str(&format!(
                    "{},{:.3},{:.6}\n",
                    s.name(),
                    sample.time_secs,
                    sample.value
                ));
            }
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.4} min={:.4} max={:.4}",
            self.name,
            self.len(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn series_stats() {
        let mut s = Series::new("x");
        for (i, v) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            s.push(t(i as u64), v);
        }
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.last(), Some(4.0));
    }

    #[test]
    fn empty_series_is_safe() {
        let s = Series::new("empty");
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.last(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Series::new("q");
        for v in 1..=100 {
            s.push(t(v), v as f64);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((s.quantile(0.9) - 90.0).abs() <= 1.0);
    }

    #[test]
    fn mean_between_windows() {
        let mut s = Series::new("w");
        for i in 0..10 {
            s.push(t(i), i as f64);
        }
        assert_eq!(s.mean_between(0.0, 5.0), 2.0);
        assert_eq!(s.mean_between(5.0, 10.0), 7.0);
        assert_eq!(s.mean_between(100.0, 200.0), 0.0);
    }

    #[test]
    fn downsample_bounds() {
        let mut s = Series::new("d");
        for i in 0..1000 {
            s.push(t(i), i as f64);
        }
        assert_eq!(s.downsample(10).len(), 10);
        assert_eq!(s.downsample(0).len(), 0);
        assert_eq!(s.downsample(5000).len(), 1000);
    }

    #[test]
    fn recorder_creates_and_appends() {
        let mut rec = Recorder::new();
        rec.record("a", t(1), 1.0);
        rec.record("a", t(2), 2.0);
        rec.record("b", t(1), 9.0);
        assert_eq!(rec.names(), vec!["a", "b"]);
        assert_eq!(rec.series("a").expect("a").len(), 2);
        assert!(rec.series("missing").is_none());
    }

    #[test]
    fn recorder_ids_alias_names_and_sort_observably() {
        let mut rec = Recorder::new();
        // Create out of name order so slot order != name order.
        let zb = rec.series_id("z.b");
        let aa = rec.series_id("a.a");
        rec.record_id(zb, t(1), 1.0);
        rec.record_id(aa, t(1), 2.0);
        rec.record("z.b", t(2), 3.0);
        assert_eq!(rec.series_id("z.b"), zb);
        assert_eq!(rec.names(), vec!["a.a", "z.b"]);
        let ordered: Vec<&str> = rec.iter().map(Series::name).collect();
        assert_eq!(ordered, vec!["a.a", "z.b"]);
        assert_eq!(rec.series("z.b").expect("z.b").len(), 2);
    }

    #[test]
    fn recorder_merge_prefixed() {
        let mut base = Recorder::new();
        let mut other = Recorder::new();
        other.record("rps", t(1), 100.0);
        base.merge_prefixed("web", &other);
        assert_eq!(base.series("web.rps").expect("merged").len(), 1);
    }

    #[test]
    fn csv_export_shape() {
        let mut rec = Recorder::new();
        rec.record("m", t(1), 0.5);
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,time_secs,value");
        assert!(lines[1].starts_with("m,1.000,0.5"));
    }
}
