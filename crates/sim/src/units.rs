//! Size newtypes.
//!
//! [`ByteSize`] counts bytes, [`PageCount`] counts pages; keeping them as
//! distinct types prevents the classic bytes-vs-pages unit confusion in
//! reclaim math.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of bytes.
///
/// # Example
///
/// ```
/// use tmo_sim::ByteSize;
///
/// let sz = ByteSize::from_gib(2);
/// assert_eq!(sz.as_mib(), 2048.0);
/// assert_eq!(sz.to_string(), "2.00 GiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

/// A quantity of pages (page size is a property of the machine, not of
/// this type).
///
/// # Example
///
/// ```
/// use tmo_sim::{ByteSize, PageCount};
///
/// let pages = PageCount::new(256);
/// assert_eq!(pages.to_bytes(ByteSize::from_kib(4)), ByteSize::from_mib(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageCount(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from KiB.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from MiB.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from GiB.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in KiB as a float.
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in MiB as a float.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in GiB as a float.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Whether this size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction saturating at zero.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales by a non-negative float factor, truncating to whole bytes.
    pub fn mul_f64(self, factor: f64) -> ByteSize {
        debug_assert!(
            factor >= 0.0 && factor.is_finite(),
            "invalid factor {factor}"
        );
        ByteSize((self.0 as f64 * factor.max(0.0)) as u64)
    }

    /// How many whole pages of `page_size` fit in this size (rounding up
    /// for any remainder, so a partial page counts as one page).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn div_ceil_pages(self, page_size: ByteSize) -> PageCount {
        assert!(!page_size.is_zero(), "page size must be non-zero");
        PageCount(self.0.div_ceil(page_size.0))
    }
}

impl PageCount {
    /// Zero pages.
    pub const ZERO: PageCount = PageCount(0);

    /// Creates a count of pages.
    pub const fn new(pages: u64) -> Self {
        PageCount(pages)
    }

    /// Raw page count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Raw page count as usize.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Whether this count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The byte size of this many pages of `page_size` each.
    pub const fn to_bytes(self, page_size: ByteSize) -> ByteSize {
        ByteSize(self.0 * page_size.0)
    }

    /// Subtraction saturating at zero.
    pub fn saturating_sub(self, other: PageCount) -> PageCount {
        PageCount(self.0.saturating_sub(other.0))
    }

    /// The smaller of two counts.
    pub fn min(self, other: PageCount) -> PageCount {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

macro_rules! impl_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<u64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: u64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<u64> for $ty {
            type Output = $ty;
            fn div(self, rhs: u64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div for $ty {
            /// Ratio of two quantities as a float; dividing by zero
            /// yields zero.
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                if rhs.0 == 0 {
                    0.0
                } else {
                    self.0 as f64 / rhs.0 as f64
                }
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0), Add::add)
            }
        }
    };
}

impl_arith!(ByteSize);
impl_arith!(PageCount);

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GIB: u64 = 1024 * 1024 * 1024;
        const MIB: u64 = 1024 * 1024;
        const KIB: u64 = 1024;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", self.as_kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
    }

    #[test]
    fn page_byte_round_trip() {
        let page = ByteSize::from_kib(4);
        let sz = ByteSize::from_mib(8);
        let pages = sz.div_ceil_pages(page);
        assert_eq!(pages, PageCount::new(2048));
        assert_eq!(pages.to_bytes(page), sz);
    }

    #[test]
    fn div_ceil_rounds_up() {
        let page = ByteSize::from_kib(4);
        let sz = ByteSize::new(4097);
        assert_eq!(sz.div_ceil_pages(page), PageCount::new(2));
    }

    #[test]
    #[should_panic(expected = "page size must be non-zero")]
    fn div_ceil_zero_page_panics() {
        let _ = ByteSize::from_mib(1).div_ceil_pages(ByteSize::ZERO);
    }

    #[test]
    fn ratio_division() {
        assert!((ByteSize::from_mib(1) / ByteSize::from_mib(4) - 0.25).abs() < 1e-12);
        assert_eq!(ByteSize::from_mib(1) / ByteSize::ZERO, 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteSize::new(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_kib(4).to_string(), "4.00 KiB");
        assert_eq!(ByteSize::from_mib(64).to_string(), "64.00 MiB");
        assert_eq!(ByteSize::from_gib(3).to_string(), "3.00 GiB");
        assert_eq!(PageCount::new(7).to_string(), "7 pages");
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(
            ByteSize::from_kib(1).saturating_sub(ByteSize::from_mib(1)),
            ByteSize::ZERO
        );
        assert_eq!(
            PageCount::new(3).saturating_sub(PageCount::new(10)),
            PageCount::ZERO
        );
    }

    #[test]
    fn mul_f64_truncates() {
        assert_eq!(ByteSize::new(10).mul_f64(0.55), ByteSize::new(5));
    }
}
