//! The simulation clock.
//!
//! The whole stack advances in fixed-size ticks. A [`Clock`] owns the
//! current instant and the tick length; components receive the clock's
//! `now()` when they need timestamps and the tick length when they need
//! to convert per-tick quantities into rates.

use crate::time::{SimDuration, SimTime};

/// A fixed-step simulation clock.
///
/// # Example
///
/// ```
/// use tmo_sim::{Clock, SimDuration};
///
/// let mut clock = Clock::new(SimDuration::from_millis(100));
/// for _ in 0..10 {
///     clock.tick();
/// }
/// assert_eq!(clock.now().as_secs(), 1);
/// assert_eq!(clock.ticks(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Clock {
    now: SimTime,
    tick: SimDuration,
    ticks: u64,
}

impl Clock {
    /// Creates a clock at time zero with the given tick length.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn new(tick: SimDuration) -> Self {
        assert!(!tick.is_zero(), "tick length must be non-zero");
        Clock {
            now: SimTime::ZERO,
            tick,
            ticks: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The tick length.
    pub fn tick_len(&self) -> SimDuration {
        self.tick
    }

    /// Number of ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances the clock by one tick and returns the new instant.
    pub fn tick(&mut self) -> SimTime {
        self.now += self.tick;
        self.ticks += 1;
        self.now
    }

    /// Runs `f` once per tick until `duration` of simulated time has
    /// elapsed, passing the instant at the *end* of each tick.
    pub fn run_for(&mut self, duration: SimDuration, mut f: impl FnMut(&mut Clock)) {
        let deadline = self.now + duration;
        while self.now < deadline {
            self.now += self.tick;
            self.ticks += 1;
            f(self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let mut c = Clock::new(SimDuration::from_secs(1));
        assert_eq!(c.tick(), SimTime::from_secs(1));
        assert_eq!(c.tick(), SimTime::from_secs(2));
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    fn run_for_executes_expected_tick_count() {
        let mut c = Clock::new(SimDuration::from_millis(100));
        let mut count = 0;
        c.run_for(SimDuration::from_secs(2), |_| count += 1);
        assert_eq!(count, 20);
        assert_eq!(c.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_for_zero_duration_is_noop() {
        let mut c = Clock::new(SimDuration::from_millis(100));
        let mut count = 0;
        c.run_for(SimDuration::ZERO, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic(expected = "tick length must be non-zero")]
    fn zero_tick_panics() {
        let _ = Clock::new(SimDuration::ZERO);
    }
}
