//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of proptest:
//! strategies (`Range`, `Just`, `any`, tuples, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`), the `proptest!` macro, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! SplitMix64 stream seeded by the test name, so failures reproduce
//! run-to-run. There is **no shrinking**: a failing case reports the
//! assertion message and the case number only.

use std::fmt;
use std::ops::Range;

/// SplitMix64 step — the same generator `tmo-sim` uses for seeding,
/// re-implemented here so the shim stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        // Warm up so small seeds decorrelate.
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // Multiply-shift (Lemire) without the rejection loop; the tiny
        // modulo bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
        }
    }
}

/// Result type test bodies are wrapped in.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Box-dyn strategies so `prop_oneof!` can mix concrete types.
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type. Built by
/// `prop_oneof!`.
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given (non-empty) choices.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.choices.len() as u64) as usize;
        self.choices[pick].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for any value of `T`. See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Drives one property: keeps generating cases until `config.cases`
/// pass, a case fails, or too many are rejected.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Seed from the test name (FNV-1a) so each property gets its own
    // stable stream.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: {rejected} cases rejected before {} passed — \
                     prop_assume! is too strict",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` falsified at case {}: {msg}", passed + 1)
            }
        }
    }
}

/// Declares property tests. Mirrors proptest's macro for the grammar
/// this workspace uses: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {$(
        $(#[$meta])*
        #[allow(unused_parens)]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                let mut __case = move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Uniform choice between the listed strategies (all must generate the
/// same value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Rejects the current case, telling the runner to draw another.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u8..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_proptest(ProptestConfig::with_cases(16), "x", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        crate::run_proptest(ProptestConfig::with_cases(16), "x", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u64), (5u64..10), any::<u8>().prop_map(u64::from)]) {
            prop_assert!(v == 1u64 || (5u64..10).contains(&v) || v <= u8::MAX as u64);
        }

        #[test]
        fn assume_rejects(n in 0u64..100, pair in (0u64..4, 0u64..4)) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "n was {}", n);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }
}
