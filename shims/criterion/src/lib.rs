//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal harness that is API-compatible with the
//! subset of criterion the bench crates use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/
//! `measurement_time`, `bench_function`, `Bencher::iter`/
//! `iter_with_setup`, and the `criterion_group!`/`criterion_main!`
//! macros. It reports mean wall-clock time per iteration; there is no
//! statistical analysis, HTML report, or regression detection.
//!
//! Two environment variables extend the real criterion's behavior for
//! this workspace's `scripts/bench.sh`:
//!
//! * `TMO_BENCH_JSON=<path>` — after all groups run, write a
//!   machine-readable summary of every benchmark (median/mean/best
//!   nanoseconds per iteration) to `<path>`. Keys are emitted in a
//!   fixed order so the file diffs cleanly.
//! * `TMO_BENCH_SMOKE=1` — clamp sample counts and time budgets to a
//!   few milliseconds per benchmark, regardless of per-group settings.
//!   CI uses this to prove the harness runs end to end without paying
//!   for statistically meaningful timings.

// A bench harness exists to read the wall clock; it is outside the
// simulation determinism contract (tmo-lint skips shims/ entirely, and
// the workspace clippy.toml disallowed-methods rule is waived here).
#![allow(clippy::disallowed_methods)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing summary, kept for the JSON report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name, empty for top-level `bench_function` calls.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median of the per-sample mean iteration times, in nanoseconds.
    pub median_ns: f64,
    /// Mean iteration time over all timed samples, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest per-sample mean iteration time, in nanoseconds.
    pub best_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Total timed iterations across all samples.
    pub iters: u64,
}

/// Every benchmark run by this process, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn smoke_mode() -> bool {
    std::env::var_os("TMO_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let record = run_bench(
            f,
            "",
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
        );
        eprintln!("{:<44} {}", name, record_line(&record));
        self
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Time spent running untimed warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let record = run_bench(
            f,
            &self.name,
            &name,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
        );
        eprintln!("  {}/{:<40} {}", self.name, name, record_line(&record));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to drive the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` untimed before each call.
    pub fn iter_with_setup<S, R, Setup, F>(&mut self, mut setup: Setup, mut routine: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn record_line(r: &BenchRecord) -> String {
    format!(
        "median {:>12.1}ns   best {:>12.1}ns   ({} iters)",
        r.median_ns, r.best_ns, r.iters
    )
}

fn run_bench<F>(
    mut f: F,
    group: &str,
    name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
) -> BenchRecord
where
    F: FnMut(&mut Bencher),
{
    // Smoke mode clamps every budget, including per-group overrides, so
    // CI's bench stage stays cheap no matter what the bench files ask for.
    let (sample_size, warm_up_time, measurement_time) = if smoke_mode() {
        (
            sample_size.min(3),
            warm_up_time.min(Duration::from_millis(5)),
            measurement_time.min(Duration::from_millis(25)),
        )
    } else {
        (sample_size, warm_up_time, measurement_time)
    };

    // Warm-up: single iterations until the warm-up budget is spent, also
    // establishing a per-iteration estimate.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        f(&mut one);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;

    // Size samples so all of them fit the measurement budget.
    let budget_per_sample = measurement_time / sample_size.max(1) as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut sample_means_ns: Vec<f64> = Vec::with_capacity(sample_size.max(1));
    let mut total = Duration::ZERO;
    let mut timed_iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        timed_iters += iters;
        sample_means_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    sample_means_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = if sample_means_ns.len() % 2 == 1 {
        sample_means_ns[sample_means_ns.len() / 2]
    } else {
        let hi = sample_means_ns.len() / 2;
        (sample_means_ns[hi - 1] + sample_means_ns[hi]) / 2.0
    };
    let record = BenchRecord {
        group: group.to_string(),
        name: name.to_string(),
        median_ns,
        mean_ns: total.as_nanos() as f64 / timed_iters as f64,
        best_ns: sample_means_ns[0],
        samples: sample_means_ns.len(),
        iters: timed_iters,
    };
    RECORDS
        .lock()
        .expect("bench record lock poisoned")
        .push(record.clone());
    record
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes the accumulated [`BenchRecord`]s as the `tmo-bench-v1`
/// JSON document. Field order is fixed so output diffs cleanly.
pub fn render_json_report() -> String {
    let records = RECORDS.lock().expect("bench record lock poisoned");
    let mode = if smoke_mode() { "smoke" } else { "full" };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tmo-bench-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {:.3}, \
             \"mean_ns\": {:.3}, \"best_ns\": {:.3}, \"samples\": {}, \"iters\": {}}}{sep}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            r.median_ns,
            r.mean_ns,
            r.best_ns,
            r.samples,
            r.iters,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON report to `$TMO_BENCH_JSON`, if set. Called by the
/// `criterion_main!`-generated `main` after all groups finish.
pub fn write_json_report() {
    let Some(path) = std::env::var_os("TMO_BENCH_JSON") else {
        return;
    };
    let body = render_json_report();
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!(
            "criterion shim: failed to write {}: {e}",
            path.to_string_lossy()
        );
        std::process::exit(1);
    }
    eprintln!("bench report written to {}", path.to_string_lossy());
}

/// Bundles benchmark functions into a callable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups, then flushing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn harness_runs_benches() {
        shim_group();
        let json = render_json_report();
        assert!(json.contains("\"schema\": \"tmo-bench-v1\""));
        assert!(json.contains("\"group\": \"shim\", \"name\": \"iter\""));
        assert!(json.contains("\"group\": \"shim\", \"name\": \"with_setup\""));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
