//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal harness that is API-compatible with the
//! subset of criterion the bench crates use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/
//! `measurement_time`, `bench_function`, `Bencher::iter`/
//! `iter_with_setup`, and the `criterion_group!`/`criterion_main!`
//! macros. It reports mean wall-clock time per iteration; there is no
//! statistical analysis, HTML report, or regression detection.

// A bench harness exists to read the wall clock; it is outside the
// simulation determinism contract (tmo-lint skips shims/ entirely, and
// the workspace clippy.toml disallowed-methods rule is waived here).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(
            f,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
        );
        eprintln!("{:<44} {report}", name.into());
        self
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Time spent running untimed warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = Some(d);
        self
    }

    /// Time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(
            f,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
        );
        eprintln!("  {}/{:<40} {report}", self.name, name.into());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to drive the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` untimed before each call.
    pub fn iter_with_setup<S, R, Setup, F>(&mut self, mut setup: Setup, mut routine: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_bench<F>(
    mut f: F,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
) -> String
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: single iterations until the warm-up budget is spent, also
    // establishing a per-iteration estimate.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        f(&mut one);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;

    // Size samples so all of them fit the measurement budget.
    let budget_per_sample = measurement_time / sample_size.max(1) as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut timed_iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed / iters as u32);
        timed_iters += iters;
    }
    let mean = total / timed_iters as u32;
    format!("mean {mean:>12.2?}   best {best:>12.2?}   ({timed_iters} iters)")
}

/// Bundles benchmark functions into a callable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_function("with_setup", |b| {
            b.iter_with_setup(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn harness_runs_benches() {
        shim_group();
    }
}
