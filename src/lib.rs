//! Meta-crate for the TMO (ASPLOS '22) reproduction.
//!
//! This crate re-exports the entire reproduction stack so integration
//! tests and examples at the repository root can reach every layer
//! through one dependency:
//!
//! * [`tmo`] — the top-level library (machines, containers, runtime,
//!   A/B harness, cost model, fleet aggregation).
//! * [`tmo_sim`] — simulation substrate (clock, RNG, units, series).
//! * [`tmo_psi`] — Pressure Stall Information engine.
//! * [`tmo_mm`] — kernel memory-management substrate.
//! * [`tmo_backends`] — offload backend device models.
//! * [`tmo_faults`] — deterministic fault-injection schedules.
//! * [`tmo_workload`] — synthetic workload and application profiles.
//! * [`tmo_senpai`] — the Senpai userspace controller.
//! * [`tmo_gswap`] — the g-swap promotion-rate baseline controller.
//! * [`tmo_scenarios`] — adversarial scenario engine, SLO scoring, and
//!   blame attribution.

pub use tmo;
pub use tmo_backends;
pub use tmo_faults;
pub use tmo_gswap;
pub use tmo_mm;
pub use tmo_psi;
pub use tmo_scenarios;
pub use tmo_senpai;
pub use tmo_sim;
pub use tmo_workload;
