#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from anywhere; operates on
# the repo root. All cargo invocations are --offline: every dependency
# is a workspace path crate (including the proptest/criterion shims
# under shims/), so no registry access is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping"
fi

echo "==> ci.sh: all gates passed"
