#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from anywhere; operates on
# the repo root. All cargo invocations are --offline: every dependency
# is a workspace path crate (including the proptest/criterion shims
# under shims/), so no registry access is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test -q"
cargo test -q --workspace --offline

echo "==> seed stability: 1k-host jobs sweep (release)"
# The determinism contract at scale, as a hard gate: a 1000-host fleet
# swept across jobs ∈ {1,3,8} must produce a bit-identical FleetSummary
# (tests/seed_stability.rs). Release mode keeps the sweep to seconds and
# matches how the paper_scale experiment actually runs.
cargo test --release -q --offline --test seed_stability

echo "==> scenario stability: full catalog jobs sweep (release)"
# Every shipped adversarial scenario (tmo-scenarios catalog, shipped
# and extended) replayed over a small fleet at jobs ∈ {1,4,8} must
# produce bit-identical ScenarioOutcomes — SLO reports, blame ledgers,
# and degradation scalars compared field-for-field
# (tests/scenario_stability.rs).
cargo test --release -q --offline --test scenario_stability

echo "==> blame ground truth: causal vs pro-rata differential (release)"
# Planted single-offender scenarios with counterfactual ground truth
# (tests/blame_ground_truth.rs): the provenance CausalLedger must name
# the planted offender on every host, carry strictly less per-edge
# charge error than the growth-pro-rata heuristic, and stay silent on
# steady innocent hosts. Release mode: each planted case replays its
# hosts twice (with and without the plant).
cargo test --release -q --offline --test blame_ground_truth

echo "==> tmo-lint: determinism contract gate"
# Static determinism analysis (DESIGN.md "Determinism contract"): the
# per-file rules (hash-ordered iteration, ambient wall-clock/entropy,
# unordered float reduction, unwrap in fault paths, atomics outside the
# shard cursor, seed-namespace hygiene) plus the interprocedural
# determinism-taint pass and the stale-allow audit. Any unannotated
# finding is a hard failure, exactly like clippy. The human-readable
# gate runs first so failures print rustc-style diagnostics; the SARIF
# artifact is emitted afterwards for tooling.
./target/release/tmo-lint --root .
./target/release/tmo-lint --root . --format sarif > target/tmo-lint.sarif
echo "    sarif artifact: target/tmo-lint.sarif"

echo "==> tmo-lint --allows vs golden"
# The allow-annotation inventory is pinned: a new escape hatch must be
# added to scripts/golden/lint_clean.txt in the same PR, so it shows up
# in review instead of slipping in silently.
./target/release/tmo-lint --root . --allows \
    | diff -u scripts/golden/lint_clean.txt - \
    || { echo "lint allow inventory drifted from scripts/golden/lint_clean.txt"; exit 1; }

echo "==> chaos smoke: ext_chaos --quick --jobs 4 vs golden"
# Fault schedules are pure hashes of (seed, host index, tick), so the
# quick chaos sweep's stdout is byte-stable across runs and worker
# counts; a diff against the checked-in golden file catches any
# accidental nondeterminism or schedule drift.
./target/release/repro --experiment ext_chaos --quick --jobs 4 2>/dev/null \
    | diff -u scripts/golden/ext_chaos_quick.txt - \
    || { echo "ext_chaos output drifted from scripts/golden/ext_chaos_quick.txt"; exit 1; }

echo "==> adversarial smoke: ext_adversarial --quick --jobs 4 vs golden"
# The scenario engine draws only from FaultPlan hashes of (seed, host
# index, tick), so the quick adversarial sweep — degradation table,
# blame edges, and the paired A/B verdict — is byte-stable across runs
# and worker counts. Diffing against the golden pins both the engine's
# determinism and the SLO/blame scoring pipeline.
./target/release/repro --experiment ext_adversarial --quick --jobs 4 2>/dev/null \
    | diff -u scripts/golden/ext_adversarial_quick.txt - \
    || { echo "ext_adversarial output drifted from scripts/golden/ext_adversarial_quick.txt"; exit 1; }

echo "==> blame-validation smoke: ext_blame_validation --quick --jobs 4 vs golden"
# Provenance tags reclaim with the already-chosen trigger and draws
# nothing, so the precision table is byte-stable across runs and
# worker counts. The golden pins the measured causal-vs-pro-rata
# differential (top-offender precision and per-edge charge error);
# the hard pass/fail thresholds live in tests/blame_ground_truth.rs.
./target/release/repro --experiment ext_blame_validation --quick --jobs 4 2>/dev/null \
    | diff -u scripts/golden/ext_blame_validation_quick.txt - \
    || { echo "ext_blame_validation output drifted from scripts/golden/ext_blame_validation_quick.txt"; exit 1; }

echo "==> bench smoke: scripts/bench.sh --smoke"
# Compiles and exercises every benchmark with clamped sample counts and
# validates the emitted BENCH_*.json against the required-benchmark
# schema. Timings in smoke mode are meaningless; this gate is about the
# harness, the JSON shape, and keeping the benches compiling.
./scripts/bench.sh --smoke

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping"
fi

echo "==> ci.sh: all gates passed"
