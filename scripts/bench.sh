#!/usr/bin/env bash
# Runs the micro and figures benchmark suites and emits machine-readable
# tmo-bench-v1 reports (see DESIGN.md "Benchmark baseline").
#
#   scripts/bench.sh           full run; writes BENCH_micro.json and
#                              BENCH_figures.json at the repo root
#   scripts/bench.sh --smoke   clamped run for CI; writes the same files
#                              under target/bench-smoke/ and never
#                              touches the checked-in baselines
#
# Both modes validate the emitted reports with bench-check, so a bench
# that silently stops running fails the script rather than producing a
# hollow report.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
OUTDIR=.
if [[ "${1:-}" == "--smoke" ]]; then
    MODE=smoke
    OUTDIR=target/bench-smoke
    export TMO_BENCH_SMOKE=1
elif [[ $# -gt 0 ]]; then
    echo "usage: scripts/bench.sh [--smoke]" >&2
    exit 2
fi
mkdir -p "$OUTDIR"
# Cargo runs bench binaries from the crate's manifest directory, so the
# report path handed to the shim must be absolute.
OUTDIR="$(cd "$OUTDIR" && pwd)"

echo "==> cargo bench --bench micro ($MODE)"
TMO_BENCH_JSON="$OUTDIR/BENCH_micro.json" \
    cargo bench --offline -q -p tmo-bench --bench micro

echo "==> cargo bench --bench figures ($MODE)"
run_figures() {
    TMO_BENCH_JSON="$OUTDIR/BENCH_figures.json" \
        cargo bench --offline -q -p tmo-bench --bench figures
}
run_figures

echo "==> paper_scale sweep ($MODE)"
# The harness-scaling experiment: fleet size × worker count, emitting a
# tmo-bench-v1 scaling report as a side channel (stdout stays the
# deterministic checksum table). Smoke clamps to the 1k-host rung; the
# full run sweeps up to 100k hosts. Stdout is discarded here — the
# determinism assertions inside the experiment still run either way.
cargo build --release --offline -q -p tmo-experiments --bin repro
run_scaling() {
    if [[ "$MODE" == smoke ]]; then
        TMO_SCALING_JSON="$OUTDIR/BENCH_scaling.json" \
            ./target/release/repro --experiment ext_paper_scale --quick >/dev/null
    else
        TMO_SCALING_JSON="$OUTDIR/BENCH_scaling.json" \
            ./target/release/repro --experiment ext_paper_scale >/dev/null
    fi
}
run_scaling

echo "==> bench-check"
cargo build --release --offline -q -p tmo-bench --bin bench-check
./target/release/bench-check micro "$OUTDIR/BENCH_micro.json"
./target/release/bench-check figures "$OUTDIR/BENCH_figures.json"
# Figure speedup gate: the scan-heavy figures must stay ≥3x faster than
# the committed pre-batching recording (BENCH_figures_baseline.json).
# Smoke mode clamps sample counts, not figure scale, so per-iteration
# medians remain comparable to the full-mode baseline. Wall-clock
# medians on a shared CI box can swing far beyond any code-level
# margin when a co-tenant lands on the same cores, so a failed check
# re-measures (fresh figures bench run) up to two times — a genuine
# regression fails all three attempts; transient machine noise does
# not survive them.
for attempt in 1 2 3; do
    if ./target/release/bench-check figures-speedup \
        BENCH_figures_baseline.json "$OUTDIR/BENCH_figures.json"; then
        break
    elif [[ "$attempt" == 3 ]]; then
        echo "figure speedup gate failed on all $attempt attempts" >&2
        exit 1
    else
        echo "    speedup gate failed (attempt $attempt); re-measuring" >&2
        run_figures
    fi
done
# Hard parallel-efficiency gate: >= 0.7 at jobs=4 for >= 10k hosts in
# full mode, >= 0.5 for every jobs=4 cell in smoke mode. Parallel
# efficiency is a wall-clock ratio, so it suffers the same co-tenant
# noise as the speedup gate above and gets the same remedy: a failed
# check re-measures (fresh scaling sweep) up to two times before it is
# believed.
for attempt in 1 2 3; do
    if ./target/release/bench-check paper-scale "$OUTDIR/BENCH_scaling.json"; then
        break
    elif [[ "$attempt" == 3 ]]; then
        echo "paper-scale efficiency gate failed on all $attempt attempts" >&2
        exit 1
    else
        echo "    paper-scale gate failed (attempt $attempt); re-measuring" >&2
        run_scaling
    fi
done

echo "==> bench.sh: reports written to $OUTDIR (mode=$MODE)"
