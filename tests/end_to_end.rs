//! Cross-crate integration tests: the full TMO pipeline — workload →
//! kernel MM → PSI → Senpai → backend — exercised end to end.

use tmo::prelude::*;
use tmo_repro::{tmo, tmo_psi, tmo_senpai, tmo_workload};

fn zswap_machine(dram_mib: u64, seed: u64) -> Machine {
    Machine::new(MachineConfig {
        dram: ByteSize::from_mib(dram_mib),
        swap: SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        },
        seed,
        ..MachineConfig::default()
    })
}

#[test]
fn full_pipeline_converges_to_mild_pressure() {
    let mut machine = zswap_machine(256, 11);
    let id =
        machine.add_container(&tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128)));
    let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0));
    rt.run(SimDuration::from_mins(4));

    let m = rt.machine();
    let saved = m.savings_fraction(id);
    assert!(saved > 0.08, "saved {saved}");
    // Pressure is non-zero (contention exists) but bounded: the paper's
    // "low but non-zero" operating point.
    let psi = m.container(id).psi().some_avg10(Resource::Memory);
    assert!(psi < 0.05, "runaway pressure {psi}");
    // Offloaded cold pages live in the zswap pool, costing compressed
    // bytes.
    let g = m.mm().global_stat();
    assert!(g.zswap_pool_bytes > ByteSize::ZERO);
    assert!(g.zswap_pool_bytes < ByteSize::from_mib(40));
}

#[test]
fn whole_stack_is_deterministic() {
    let run = |seed: u64| {
        let mut machine = zswap_machine(256, seed);
        let id = machine
            .add_container(&tmo_workload::apps::web().with_mem_total(ByteSize::from_mib(128)));
        let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0));
        rt.run(SimDuration::from_mins(2));
        let m = rt.machine();
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        (
            stat.resident().as_u64(),
            stat.swapins_total,
            stat.refaults_total,
            m.container(id).psi().snapshot(Resource::Memory).some_total,
        )
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100), "different seeds should diverge");
}

#[test]
fn file_only_mode_never_touches_swap() {
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        swap: SwapKind::None,
        seed: 13,
        ..MachineConfig::default()
    });
    let id = machine
        .add_container(&tmo_workload::apps::analytics().with_mem_total(ByteSize::from_mib(128)));
    let mut rt = TmoRuntime::with_senpai(
        machine,
        SenpaiConfig {
            file_only: true,
            ..SenpaiConfig::accelerated(40.0)
        },
    );
    rt.run(SimDuration::from_mins(3));
    let m = rt.machine();
    let stat = m.mm().cgroup_stat(m.container(id).cgroup());
    assert_eq!(stat.anon_offloaded.as_u64(), 0);
    assert_eq!(stat.swapouts_total, 0);
    // But file cache was still trimmed.
    assert!(
        stat.file_evicted.as_u64() > 0,
        "file-only mode should trim the page cache"
    );
}

#[test]
fn heterogeneous_backends_shift_the_offload_equilibrium() {
    // The paper's core adaptivity claim: the same controller offloads
    // more onto a faster backend.
    let run = |swap: SwapKind| {
        let mut machine = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap,
            seed: 17,
            ..MachineConfig::default()
        });
        let id = machine
            .add_container(&tmo_workload::apps::web().with_mem_total(ByteSize::from_mib(160)));
        let mut rt = TmoRuntime::with_senpai(
            machine,
            SenpaiConfig {
                write_limit_mbps: None,
                ..SenpaiConfig::accelerated(40.0)
            },
        );
        rt.run(SimDuration::from_mins(4));
        rt.machine()
            .mm()
            .cgroup_stat(rt.machine().container(id).cgroup())
            .anon_offloaded
            .as_u64()
    };
    let on_zswap = run(SwapKind::Zswap {
        capacity_fraction: 0.3,
        allocator: ZswapAllocator::Zsmalloc,
    });
    let on_slow_ssd = run(SwapKind::Ssd(SsdModel::A)); // 9.3 ms p99
    assert!(
        on_zswap > on_slow_ssd,
        "zswap offload {on_zswap} should exceed slow-SSD offload {on_slow_ssd}"
    );
}

#[test]
fn multi_container_host_respects_priorities() {
    let mut machine = zswap_machine(512, 19);
    let protected = machine.add_container_with(
        &tmo_workload::apps::cache_b().with_mem_total(ByteSize::from_mib(96)),
        ContainerConfig {
            protected: true,
            ..ContainerConfig::default()
        },
    );
    let relaxed = machine.add_container_with(
        &tmo_workload::tax::datacenter_tax(ByteSize::from_mib(512)),
        ContainerConfig {
            relaxed: true,
            ..ContainerConfig::default()
        },
    );
    let normal =
        machine.add_container(&tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(96)));
    let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0));
    rt.run(SimDuration::from_mins(3));
    let m = rt.machine();
    assert_eq!(
        m.savings_fraction(protected),
        0.0,
        "protected container must not be reclaimed"
    );
    assert!(m.savings_fraction(relaxed) > 0.05);
    assert!(m.savings_fraction(normal) > 0.02);
}

#[test]
fn pressure_files_render_for_every_container() {
    let mut machine = zswap_machine(256, 23);
    let id =
        machine.add_container(&tmo_workload::apps::ads_a().with_mem_total(ByteSize::from_mib(96)));
    machine.reclaim(id, ByteSize::from_mib(40));
    machine.run(SimDuration::from_secs(30));
    let psi = machine.container(id).psi();
    for resource in [Resource::Memory, Resource::Io, Resource::Cpu] {
        let text = tmo_psi::render_pressure_file(&psi.snapshot(resource));
        assert!(text.starts_with("some avg10="), "{resource}: {text}");
        assert_eq!(text.lines().count(), 2);
    }
    // Memory pressure accumulated from the forced reclaim's swap-ins.
    assert!(psi.snapshot(Resource::Memory).some_total > SimDuration::ZERO);
}

#[test]
fn swap_capped_device_reports_exhaustion_to_senpai() {
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        // A swap partition of only 8 MiB.
        swap: SwapKind::SsdCapped(SsdModel::C, ByteSize::from_mib(8)),
        seed: 29,
        ..MachineConfig::default()
    });
    let id = machine
        .add_container(&tmo_workload::apps::analytics().with_mem_total(ByteSize::from_mib(160)));
    // Ask for far more anon offload than the partition can hold.
    machine.reclaim(id, ByteSize::from_mib(80));
    machine.run(SimDuration::from_secs(10));
    machine.reclaim(id, ByteSize::from_mib(80));
    let signal = machine.senpai_signal(id);
    assert!(
        signal.swap_full,
        "swap exhaustion must surface in the signal"
    );
    let stat = machine.mm().cgroup_stat(machine.container(id).cgroup());
    assert!(stat.anon_offloaded.to_bytes(machine.config().page_size) <= ByteSize::from_mib(8));
}

#[test]
fn oomd_kills_a_container_driven_functionally_out_of_memory() {
    use tmo_senpai::{OomdConfig, OomdMonitor};

    // A single-task container on a painfully slow SSD, with nearly all
    // of its memory force-reclaimed: every access becomes a ~ms stall,
    // so the lone task is fully stalled — sustained `full` pressure.
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        swap: SwapKind::Ssd(SsdModel::A), // 9.3 ms p99 reads
        seed: 31,
        ..MachineConfig::default()
    });
    let mut profile = tmo_workload::apps::cache_b().with_mem_total(ByteSize::from_mib(128));
    profile.tasks = 1;
    let id = machine.add_container(&profile);

    let mut oomd = OomdMonitor::new(OomdConfig {
        full_threshold: 0.10,
        sustain: SimDuration::from_secs(5),
    });
    // Keep the container thrashing: strip it to the bone repeatedly.
    let mut killed = false;
    for _ in 0..300 {
        machine.reclaim(id, ByteSize::from_mib(64));
        machine.tick();
        let full = machine.container(id).psi().full_avg10(Resource::Memory);
        if oomd.observe(0, full, machine.config().tick).is_some() {
            machine.kill_container(id);
            killed = true;
            break;
        }
    }
    assert!(
        killed,
        "sustained full pressure must trigger the kill policy"
    );
    assert!(!machine.is_alive(id));
    assert_eq!(
        machine
            .mm()
            .cgroup_stat(machine.container(id).cgroup())
            .resident()
            .as_u64(),
        0
    );
}

#[test]
fn runtime_with_oomd_spares_healthy_containers() {
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        swap: SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        },
        seed: 37,
        ..MachineConfig::default()
    });
    machine.add_container(&tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128)));
    let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0))
        .with_oomd(tmo_senpai::OomdConfig::default());
    rt.run(SimDuration::from_mins(2));
    // Senpai's mild `some` pressure never approaches the `full` kill
    // threshold: the workload survives and still saves memory.
    assert!(rt.machine().is_alive(tmo::ContainerId(0)));
    assert!(rt.oomd().expect("attached").kills().is_empty());
    assert!(rt.machine().savings_fraction(tmo::ContainerId(0)) > 0.05);
}

#[test]
fn slices_group_containers_for_hierarchy_wide_control() {
    let mut machine = zswap_machine(512, 41);
    let slice = machine.create_slice("workload.slice");
    let a = machine.add_container_with(
        &tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(96)),
        ContainerConfig {
            slice: Some(slice),
            ..ContainerConfig::default()
        },
    );
    let b = machine.add_container_with(
        &tmo_workload::apps::analytics().with_mem_total(ByteSize::from_mib(96)),
        ContainerConfig {
            slice: Some(slice),
            ..ContainerConfig::default()
        },
    );
    // The slice's memory.current covers both children.
    assert_eq!(machine.mm().memory_current(slice), ByteSize::from_mib(192));
    // A memory.reclaim write on the slice distributes across children.
    machine.mm_mut().reclaim(slice, ByteSize::from_mib(20));
    let a_res = machine
        .mm()
        .cgroup_stat(machine.container(a).cgroup())
        .resident();
    let b_res = machine
        .mm()
        .cgroup_stat(machine.container(b).cgroup())
        .resident();
    let total = a_res.as_u64() + b_res.as_u64();
    let page = machine.config().page_size.as_u64();
    assert!(total * page <= ByteSize::from_mib(173).as_u64());
    assert!(a_res.as_u64() * page < ByteSize::from_mib(96).as_u64());
    assert!(b_res.as_u64() * page < ByteSize::from_mib(96).as_u64());
}

#[test]
fn memory_low_shields_a_container_from_its_neighbours() {
    // A host where one container's growth squeezes DRAM: the protected
    // neighbour keeps its memory, the unprotected one donates.
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        swap: SwapKind::None,
        seed: 43,
        ..MachineConfig::default()
    });
    let shielded = machine.add_container_with(
        &tmo_workload::apps::cache_b().with_mem_total(ByteSize::from_mib(80)),
        ContainerConfig {
            memory_low: Some(ByteSize::from_mib(96)),
            ..ContainerConfig::default()
        },
    );
    let donor = machine
        .add_container(&tmo_workload::apps::analytics().with_mem_total(ByteSize::from_mib(100)));
    // A third container grows into the remaining DRAM, forcing global
    // direct reclaim. It stays smaller than the donor so the donor is
    // the preferred (largest unprotected) victim.
    let grower = machine.add_container_with(
        &tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(80)),
        ContainerConfig {
            anon_growth: Some(ByteSize::from_mib(2)),
            anon_preload_fraction: 0.1,
            ..ContainerConfig::default()
        },
    );
    machine.run(SimDuration::from_mins(2));
    let res = |id: ContainerId| {
        machine
            .mm()
            .cgroup_stat(machine.container(id).cgroup())
            .resident()
            .as_u64()
            * machine.config().page_size.as_u64()
    };
    assert!(
        machine.mm().global_stat().direct_reclaims > 0,
        "no squeeze happened"
    );
    // The shielded container kept (almost) everything.
    assert!(
        res(shielded) >= ByteSize::from_mib(78).as_u64(),
        "shielded lost memory: {}",
        ByteSize::new(res(shielded))
    );
    // The donor gave up pages.
    assert!(
        res(donor) < ByteSize::from_mib(98).as_u64(),
        "donor kept everything: {}",
        ByteSize::new(res(donor))
    );
    let _ = grower;
}

#[test]
fn pinned_traces_make_ab_tiers_see_identical_workloads() {
    use tmo_repro::tmo_sim::DetRng;
    use tmo_workload::{AccessPlanner, AccessTrace};

    // Record one access stream from the Web profile...
    let profile = tmo_workload::apps::web().with_mem_total(ByteSize::from_mib(128));
    let page = ByteSize::from_kib(16);
    let planner = AccessPlanner::new(
        profile.classes.clone(),
        profile.mem_total.as_u64() / page.as_u64(),
    );
    let trace = AccessTrace::record(
        &planner,
        SimDuration::from_millis(100),
        600,
        &mut DetRng::seed_from_u64(555),
    );

    // ...and replay it into two tiers that differ ONLY in the device.
    let run = |swap: SwapKind| {
        let mut machine = Machine::new(MachineConfig {
            dram: ByteSize::from_mib(256),
            swap,
            seed: 47,
            ..MachineConfig::default()
        });
        let id = machine.add_container_with(
            &profile,
            ContainerConfig {
                trace: Some(trace.clone()),
                ..ContainerConfig::default()
            },
        );
        machine.run(SimDuration::from_secs(60));
        machine.container(id).last_tick();
        let stat = machine.mm().cgroup_stat(machine.container(id).cgroup());
        let accesses: f64 = machine
            .recorder()
            .series("Web.resident_mib")
            .map(|s| s.len() as f64)
            .unwrap_or(0.0);
        (stat.resident().as_u64(), accesses as u64)
    };
    let fast = run(SwapKind::Ssd(SsdModel::C));
    let slow = run(SwapKind::Ssd(SsdModel::B));
    // No reclaim happened, so with a pinned trace both tiers end in an
    // identical memory state despite different device models.
    assert_eq!(fast, slow);
}

#[test]
fn host_psi_aggregates_all_containers() {
    let mut machine = zswap_machine(512, 59);
    let a =
        machine.add_container(&tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128)));
    let b =
        machine.add_container(&tmo_workload::apps::ads_a().with_mem_total(ByteSize::from_mib(128)));
    machine.reclaim(a, ByteSize::from_mib(48));
    machine.reclaim(b, ByteSize::from_mib(48));
    machine.run(SimDuration::from_secs(30));
    let host = machine.host_psi().snapshot(Resource::Memory).some_total;
    let ca = machine
        .container(a)
        .psi()
        .snapshot(Resource::Memory)
        .some_total;
    let cb = machine
        .container(b)
        .psi()
        .snapshot(Resource::Memory)
        .some_total;
    // Host-level `some` is a union over all tasks: at least the larger
    // container's total, at most the sum.
    assert!(host > SimDuration::ZERO);
    assert!(host >= ca.max(cb), "host {host} vs max({ca}, {cb})");
    assert!(host <= ca + cb, "host {host} vs sum {}", ca + cb);
}

#[test]
fn diurnal_load_modulates_memory_behaviour() {
    use tmo_workload::DiurnalPattern;

    // A compressed 4-minute "day": demand troughs at 20% of peak.
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        seed: 61,
        ..MachineConfig::default()
    });
    let id = machine.add_container_with(
        &tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128)),
        ContainerConfig {
            diurnal: Some(DiurnalPattern::with_period(0.2, 240.0)),
            ..ContainerConfig::default()
        },
    );
    // Collect access counts over the day.
    let mut trough_accesses = 0u64;
    let mut peak_accesses = 0u64;
    let deadline = machine.now() + SimDuration::from_secs(240);
    while machine.now() < deadline {
        machine.tick();
        let t = machine.now().as_secs_f64() % 240.0;
        let accesses = machine.container(id).last_tick().accesses;
        if !(60.0..=180.0).contains(&t) {
            trough_accesses += accesses; // night halves
        } else {
            peak_accesses += accesses; // midday half
        }
    }
    assert!(
        peak_accesses as f64 > trough_accesses as f64 * 1.5,
        "peak {peak_accesses} vs trough {trough_accesses}"
    );
}

#[test]
fn nvm_backend_runs_the_full_stack() {
    // §5.2's future tier as a drop-in: faster than SSD, dearer than
    // zswap-free DRAM, no endurance constraint.
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(256),
        swap: SwapKind::Nvm(ByteSize::from_mib(256)),
        seed: 71,
        ..MachineConfig::default()
    });
    let id =
        machine.add_container(&tmo_workload::apps::feed().with_mem_total(ByteSize::from_mib(128)));
    let mut rt = TmoRuntime::with_senpai(
        machine,
        SenpaiConfig {
            write_limit_mbps: None,
            ..SenpaiConfig::accelerated(40.0)
        },
    );
    rt.run(SimDuration::from_mins(3));
    let m = rt.machine();
    assert!(m.savings_fraction(id) > 0.08, "{}", m.savings_fraction(id));
    // NVM faults are microseconds: pressure stays far under threshold,
    // so the equilibrium offload exceeds what a slow SSD would allow.
    let psi = m.container(id).psi().some_avg10(Resource::Memory);
    assert!(psi < 0.01, "psi {psi}");
    let stats = m.mm().swap_stats().expect("nvm backend");
    assert!(stats.pages_stored > 0);
}
