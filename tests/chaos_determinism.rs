//! Property tests for the deterministic fault-injection layer.
//!
//! The chaos contract extends the seed-stability contract: a faulted
//! fleet is still a pure function of `(experiment_seed, fault_config)`.
//! Identical inputs must give an identical fault schedule and an
//! identical fleet outcome — including *which hosts fail* — and a
//! parallel run must be bit-identical to a sequential one even while
//! hosts are panicking mid-run.

use proptest::prelude::*;
use tmo::prelude::*;
use tmo::runner::{FleetRunner, HostOutcome};
use tmo_repro::{tmo, tmo_faults, tmo_workload};

use tmo_faults::{FaultPlan, HostFaults, SignalFate};
use tmo_sim::SimDuration as Dt;

const FLEET_HOSTS: usize = 5;

/// A compact, comparable digest of one host's run under faults.
#[derive(Debug, Clone, PartialEq)]
struct HostDigest {
    savings_bits: u64,
    lost_loads: u64,
    failovers: u64,
    faults_injected: u64,
    sim_secs_bits: u64,
}

/// Runs a small faulted fleet and digests every host outcome. Injected
/// panics become `Err(host, message)` digests, so failure placement is
/// part of the compared value.
fn run_chaos_fleet(
    jobs: usize,
    experiment_seed: u64,
    faults: FaultConfig,
) -> Vec<Result<HostDigest, (usize, String)>> {
    // exact(): really spawn `jobs` workers even on a small machine, so
    // the jobs=4 comparisons exercise the multi-worker merge path
    // instead of clamping down to the inline sequential one.
    let runner = FleetRunner::exact(jobs);
    let (outcomes, _) = runner.run_collect_seeded(experiment_seed, FLEET_HOSTS, |host| {
        let server = ByteSize::from_mib(128);
        let swap = if host.index % 2 == 0 {
            SwapKind::Tiered {
                zswap_fraction: 0.1,
                allocator: ZswapAllocator::Zsmalloc,
                ssd: SsdModel::C,
                demote_after: SimDuration::from_secs(20),
                min_compress_ratio: 2.0,
            }
        } else {
            SwapKind::Ssd(SsdModel::C)
        };
        let mut machine = Machine::new(MachineConfig {
            dram: server,
            swap,
            seed: host.seed,
            faults: Some(faults),
            ..MachineConfig::default()
        });
        machine.add_container(&tmo_workload::apps::feed().with_mem_total(server.mul_f64(0.5)));
        let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0));
        rt.run(SimDuration::from_mins(2));
        let m = rt.machine();
        let stats = m.mm().swap_stats().unwrap_or_default();
        HostDigest {
            savings_bits: m.savings_fraction(ContainerId(0)).to_bits(),
            lost_loads: m.mm().global_stat().lost_loads,
            failovers: stats.failovers,
            faults_injected: stats.faults_injected,
            sim_secs_bits: m.now().as_secs_f64().to_bits(),
        }
    });
    outcomes
        .into_iter()
        .map(|o| match o {
            HostOutcome::Completed(digest) => Ok(digest),
            HostOutcome::Failed(e) => Err((e.host, e.message)),
        })
        .collect()
}

/// The raw fault schedule over a tick window, for pure-schedule
/// comparison without running a simulation.
fn fault_schedule(seed: u64, host: u64, faults: FaultConfig, ticks: u64) -> Vec<u32> {
    let plan = FaultPlan::new(seed, host);
    let hf = HostFaults::new(seed, host, faults);
    let dt = Dt::from_millis(100);
    (0..ticks)
        .map(|t| {
            let mut word = 0u32;
            if plan.chance(t, 0x51, faults.per_tick(faults.spike_per_min, dt)) {
                word |= 1;
            }
            if plan.chance(t, 0xD1E, faults.per_tick(faults.device_death_per_min, dt)) {
                word |= 2;
            }
            word |= match hf.signal_fate(t, 0) {
                SignalFate::Fresh => 0,
                SignalFate::Stale => 4,
                SignalFate::Dropped => 8,
            };
            if hf.crash_victim(t, dt, 3).is_some() {
                word |= 16;
            }
            if hf.panics_at(t, dt) {
                word |= 32;
            }
            word
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same `(seed, fault_config)` ⇒ same fault schedule, queried twice.
    #[test]
    fn identical_inputs_give_identical_fault_schedules(
        seed in 0u64..u64::MAX,
        host in 0u64..64,
        intensity in 0.0f64..1.0,
    ) {
        let faults = FaultConfig::chaos(intensity);
        let a = fault_schedule(seed, host, faults, 2000);
        let b = fault_schedule(seed, host, faults, 2000);
        prop_assert_eq!(a, b);
    }

    /// Different seeds ⇒ different schedules (the seed actually drives
    /// the draws; a constant schedule would also pass the purity test).
    #[test]
    fn different_seeds_give_different_fault_schedules(
        seed in 0u64..(u64::MAX - 1),
        host in 0u64..64,
    ) {
        let faults = FaultConfig::chaos(1.0);
        let a = fault_schedule(seed, host, faults, 4000);
        let b = fault_schedule(seed + 1, host, faults, 4000);
        prop_assert!(a != b, "seed change left the schedule unchanged");
    }
}

proptest! {
    // Each case runs a 10-host-equivalent of simulation; keep it tiny.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Identical `(seed, fault_config)` ⇒ identical fleet outcome, and
    /// `jobs=4` is bit-identical to `jobs=1` even with hosts panicking
    /// and devices dying mid-run.
    #[test]
    fn faulted_fleet_is_pure_and_jobs_invariant(
        seed in 0u64..1_000_000,
        intensity in 0.25f64..1.0,
    ) {
        // Boosted rates so short runs reliably exercise every path.
        let faults = FaultConfig {
            device_death_per_min: 1.0,
            panic_per_min: 0.3,
            ..FaultConfig::chaos(intensity)
        };
        let seq = run_chaos_fleet(1, seed, faults);
        let par = run_chaos_fleet(4, seed, faults);
        prop_assert_eq!(&seq, &par, "worker count changed a chaos outcome");
        let rerun = run_chaos_fleet(4, seed, faults);
        prop_assert_eq!(&par, &rerun, "identical inputs diverged across runs");
    }
}

/// Non-property pin: at the documented chaos seed the fleet degrades
/// gracefully — some fault lands, yet the fleet is never wiped out.
#[test]
fn chaos_fleet_keeps_survivors_at_the_documented_seed() {
    let faults = FaultConfig {
        device_death_per_min: 1.0,
        panic_per_min: 0.3,
        ..FaultConfig::chaos(1.0)
    };
    let outcomes = run_chaos_fleet(4, tmo_experiments::ext_chaos::EXPERIMENT_SEED, faults);
    let survivors: Vec<&HostDigest> = outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
    assert!(!survivors.is_empty(), "the whole fleet died: {outcomes:?}");
    assert!(
        survivors
            .iter()
            .any(|d| d.faults_injected > 0 && (d.failovers > 0 || d.lost_loads > 0)),
        "no surviving host degraded through a device fault: {outcomes:?}"
    );
}
