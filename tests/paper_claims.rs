//! Integration tests asserting the paper's qualitative claims hold in
//! the reproduction at reduced (Quick) scale. Each test names the claim
//! and the section/figure it comes from.

use tmo_experiments::{ablate, fig02, fig07, fig09, fig11, fig12, fig13, Scale};
use tmo_repro::{tmo_mm, tmo_workload};

#[test]
fn claim_s2_2_cold_memory_averages_a_third_of_footprints() {
    // §2.2: "the memory offloading opportunity (i.e., fraction of cold
    // memory) averages about 35% ... in a range of 19-62%".
    let rows: Vec<_> = tmo_workload::apps::figure2_apps()
        .iter()
        .map(|app| fig02::measure(app, Scale::Quick))
        .collect();
    let avg = rows.iter().map(|r| r.cold).sum::<f64>() / rows.len() as f64;
    assert!((avg - 0.35).abs() < 0.05, "average cold fraction {avg}");
    assert!(rows.iter().any(|r| r.cold < 0.25), "a hot app exists");
    assert!(rows.iter().any(|r| r.cold > 0.55), "a cold app exists");
}

#[test]
fn claim_s3_2_psi_worked_example_is_exact() {
    // Figure 7's annotated quarters reproduce exactly.
    let (rows, _) = fig07::replay();
    assert_eq!(rows.len(), 4);
    assert!((rows[0].some - 0.125).abs() < 1e-12);
    assert!((rows[1].full - 0.0625).abs() < 1e-12);
}

#[test]
fn claim_s4_1_savings_differ_by_backend_fit() {
    // §4.1: compressible apps save on zswap; quantized byte-encoded
    // models need SSD because their net zswap savings collapse.
    let compressible = fig09::measure(&tmo_workload::apps::web(), true, Scale::Quick);
    let quantized_on_zswap = fig09::measure(&tmo_workload::apps::ml(), true, Scale::Quick);
    let quantized_on_ssd = fig09::measure(&tmo_workload::apps::ml(), false, Scale::Quick);
    assert!(compressible.savings.total() > 0.03);
    assert!(
        quantized_on_ssd.savings.anon_fraction > quantized_on_zswap.savings.anon_fraction * 1.5,
        "ssd {} vs zswap {}",
        quantized_on_ssd.savings.anon_fraction,
        quantized_on_zswap.savings.anon_fraction
    );
}

#[test]
fn claim_s4_2_tmo_eliminates_memory_bound_rps_decay() {
    // Figure 11: the baseline tier decays; TMO's zswap tier does not.
    let phases = fig11::simulate(Scale::Quick);
    let drop = |p: &fig11::PhaseResult| 1.0 - p.late_rps / p.early_rps.max(1.0);
    assert!(drop(&phases[0]) - drop(&phases[2]) > 0.05);
}

#[test]
fn claim_s4_3_promotion_rate_contradicts_performance() {
    // §4.3: "with a faster offloading device, a higher promotion rate
    // actually improves the application's performance" — i.e. promotion
    // rate and RPS move together across devices, not inversely.
    let (fast, slow) = fig12::simulate(Scale::Quick);
    assert!(fast.promotion_rate >= slow.promotion_rate);
    assert!(fast.rps >= slow.rps * 0.98);
    // And the controller held pressure in the same regime on both.
    assert!(fast.mem_pressure < 1.0);
    assert!(slow.mem_pressure < 1.0);
}

#[test]
fn claim_s4_4_aggressive_config_regresses_through_io() {
    // Figure 13: Config B's damage shows up in IO pressure and the file
    // cache, not primarily in memory pressure.
    let tiers = fig13::simulate(Scale::Quick);
    let (a, b) = (&tiers[1], &tiers[2]);
    assert!(b.io_pressure > a.io_pressure);
    assert!(b.ssd_read_iops > a.ssd_read_iops);
    assert!(b.rps < a.rps);
}

#[test]
fn claim_s3_4_refault_balancing_reduces_paging() {
    // §3.4: balancing by refault/swap-in rates minimises the aggregate
    // amount of paging relative to the legacy file-first heuristic.
    let balanced = ablate::reclaim_balance(tmo_mm::ReclaimPolicy::RefaultBalanced, Scale::Quick);
    let legacy = ablate::reclaim_balance(tmo_mm::ReclaimPolicy::LegacyFileFirst, Scale::Quick);
    assert!(
        legacy.refault_rate > balanced.refault_rate,
        "legacy refaults {} vs balanced {}",
        legacy.refault_rate,
        balanced.refault_rate
    );
}

#[test]
fn claim_s3_3_stateless_knob_does_not_block_growth() {
    // §3.3: the memory.max driver can block a rapidly expanding
    // workload; memory.reclaim cannot.
    let stateless = ablate::reclaim_knob(true, Scale::Quick);
    let stateful = ablate::reclaim_knob(false, Scale::Quick);
    assert_eq!(stateless.alloc_failures, 0);
    assert!(stateful.alloc_failures > 0);
}
