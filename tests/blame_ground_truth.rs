//! Blame ground-truth differential gate (hard CI gate).
//!
//! The growth-pro-rata `BlameLedger` is a heuristic; the provenance
//! `CausalLedger` claims to be causal. This suite is what makes either
//! claim falsifiable: every planted single-offender scenario (one
//! container leaks or churns, everything else steady) is replayed with
//! and without the plant on seeded-identical hosts, the counterfactual
//! stall delta becomes the ground-truth charge matrix, and both
//! ledgers are scored against it. The gate requires:
//!
//! 1. **Perfect planted precision** — the causal ledger's top
//!    cross-container offender is the planted offender on *every* host
//!    of *every* planted case;
//! 2. **Strict differential win** — the causal ledger's per-edge L1
//!    charge error is strictly below the pro-rata heuristic's, summed
//!    over the planted set;
//! 3. **Silence on innocent hosts** — a steady baseline run charges
//!    nothing across container boundaries (no phantom antagonists).
//!
//! The same rows render as the `ext_blame_validation` golden, so a
//! regression shows up both here and as a byte diff in CI.

use tmo::runner::FleetRunner;
use tmo_experiments::ext_blame_validation::{build_host, planted_cases, run_config, simulate_with};
use tmo_experiments::Scale;
use tmo_repro::{tmo, tmo_scenarios};
use tmo_scenarios::prelude::*;

#[test]
fn causal_ledger_names_the_planted_offender_on_every_host() {
    let cases = simulate_with(&FleetRunner::new(2), Scale::Quick);
    assert!(!cases.is_empty());
    for c in &cases {
        assert!(c.hosts > 0, "no hosts survived {c:?}");
        assert_eq!(
            c.causal_hits, c.hosts,
            "causal ledger missed the planted offender: {c:?}"
        );
        assert!(
            c.extra_stall_secs >= 0.0,
            "counterfactual stall must be non-negative: {c:?}"
        );
    }
}

#[test]
fn causal_ledger_strictly_beats_growth_pro_rata_on_edge_error() {
    let cases = simulate_with(&FleetRunner::new(2), Scale::Quick);
    let causal: f64 = cases.iter().map(|c| c.causal_err_secs).sum();
    let prorata: f64 = cases.iter().map(|c| c.prorata_err_secs).sum();
    assert!(
        causal < prorata,
        "causal per-edge error {causal:.3}s must be strictly below pro-rata {prorata:.3}s \
         ({cases:?})"
    );
}

#[test]
fn steady_hosts_accuse_no_one() {
    // An innocent host must stay innocent: with no planted offender the
    // causal ledger may self-charge (Senpai squeezing each container is
    // that container's own business) but must not invent cross-container
    // antagonists. Pro-rata cannot make this guarantee — that asymmetry
    // is the point of provenance.
    let scale = Scale::Quick;
    let cfg = run_config(scale);
    let steady = Scenario::new("steady_innocent", "no events at all");
    for seed in [7u64, 1234] {
        let (outcome, _) = run_scenario(build_host(seed, scale), &steady, &cfg);
        let n = outcome.causal.len();
        for v in 0..n {
            for o in 0..n {
                if v != o {
                    assert_eq!(
                        outcome.causal.charged(v, o),
                        0.0,
                        "phantom causal edge {v}<-{o} on a steady host (seed {seed})"
                    );
                }
            }
        }
        assert_eq!(outcome.causal.top_cross_offender(), None);
    }
}

#[test]
fn planted_verdicts_are_bit_identical_across_jobs() {
    // The provenance path is part of the sim: the whole differential
    // table must not care how many workers computed it.
    let seq = simulate_with(&FleetRunner::sequential(), Scale::Quick);
    for jobs in [4usize, 8] {
        let par = simulate_with(&FleetRunner::exact(jobs), Scale::Quick);
        assert_eq!(seq, par, "ground-truth table diverged at jobs={jobs}");
    }
}

#[test]
fn every_planted_case_has_exactly_one_offender_event() {
    for case in planted_cases(Scale::Quick) {
        assert_eq!(
            case.scenario.events.len(),
            1,
            "{} is not single-offender",
            case.scenario.name
        );
        assert!(case.baseline.events.is_empty());
        assert_eq!(
            case.scenario.events[0].target,
            Target::Container(case.offender)
        );
    }
}
