//! Scenario-stability gate: every shipped adversarial scenario is
//! bit-identical across worker counts.
//!
//! The `tmo-scenarios` engine modulates workloads mid-run (demand
//! waves, leaks, churn spikes, storm kills), which multiplies the ways
//! a stray RNG draw or iteration-order dependence could sneak in. This
//! sweep runs the *entire catalog* over a small fleet at `jobs` ∈
//! {1, 4, 8} (`exact()`, so the multi-worker merge path really runs
//! even on single-core CI boxes) and requires the full
//! [`ScenarioOutcome`] — every SLO report, every blame-ledger cell —
//! to compare equal. Promoted to a release-mode gate in
//! `scripts/ci.sh`.

use tmo::prelude::*;
use tmo::runner::FleetRunner;
use tmo_repro::{tmo, tmo_scenarios, tmo_workload};
use tmo_scenarios::prelude::*;
use tmo_workload::{apps, tax};

const HOSTS: usize = 5;
const SEED: u64 = 9200;

fn run_len() -> SimDuration {
    SimDuration::from_mins(2)
}

fn dram() -> ByteSize {
    ByteSize::from_mib(192)
}

fn build_host(seed: u64, faults: Option<FaultConfig>, scratch: MachineScratch) -> Machine {
    let dram = dram();
    let mut machine = Machine::with_scratch(
        MachineConfig {
            dram,
            swap: SwapKind::Zswap {
                capacity_fraction: 0.25,
                allocator: ZswapAllocator::Zsmalloc,
            },
            seed,
            faults,
            ..MachineConfig::default()
        },
        scratch,
    );
    machine.add_container(&apps::feed().with_mem_total(dram.mul_f64(0.35)));
    machine.add_container_with(
        &tax::datacenter_tax(dram),
        ContainerConfig {
            relaxed: true,
            ..ContainerConfig::default()
        },
    );
    machine
}

fn run_fleet(jobs: usize, scenario: &Scenario) -> Vec<ScenarioOutcome> {
    let cfg = ScenarioRunConfig {
        senpai: SenpaiConfig::accelerated(40.0),
        oomd: Some(OomdConfig::default()),
        slo: SloConfig::default(),
        duration: run_len(),
    };
    let (outcomes, _) =
        FleetRunner::exact(jobs).run_collect_seeded_sharded(SEED, HOSTS, |host, arena| {
            let machine = build_host(host.seed, scenario.faults, arena.take_scratch());
            let (outcome, machine) = run_scenario(machine, scenario, &cfg);
            arena.put_scratch(machine.into_scratch());
            outcome
        });
    // Composite stacks a chaos fault profile, so hosts may legitimately
    // panic; the stability contract covers survivors and failures alike
    // (a host must fail identically at every worker count).
    outcomes
        .into_iter()
        .map(|o| match o {
            tmo::runner::HostOutcome::Completed(v) => v,
            tmo::runner::HostOutcome::Failed(e) => ScenarioOutcome {
                scenario: format!("host {} failed: {}", e.host, e.message),
                reports: Vec::new(),
                blame: BlameLedger::new(0),
                causal: CausalLedger::new(0),
                total_degradation: -1.0,
                kills: 0,
                stall_fraction: -1.0,
                worst_recovery_secs: -1.0,
            },
        })
        .collect()
}

#[test]
fn every_shipped_scenario_is_bit_identical_across_jobs() {
    let mut shipped = catalog::all(run_len(), dram());
    shipped.extend(catalog::extended(run_len(), dram()));
    for scenario in shipped {
        let base = run_fleet(1, &scenario);
        assert_eq!(base.len(), HOSTS);
        for jobs in [4usize, 8] {
            let sweep = run_fleet(jobs, &scenario);
            assert_eq!(
                base, sweep,
                "scenario {} diverged at jobs={jobs}",
                scenario.name
            );
        }
        // Bitwise check on the f64 aggregates: Vec/struct PartialEq above
        // already compares every field, but make the float discipline
        // explicit for the headline scalar.
        for (a, b) in base.iter().zip(run_fleet(4, &scenario).iter()) {
            assert_eq!(
                a.total_degradation.to_bits(),
                b.total_degradation.to_bits(),
                "scenario {} degradation bits drifted",
                scenario.name
            );
        }
    }
}

#[test]
fn catalog_actually_exercises_the_engine() {
    // Guard against a silently-neutral catalog: across all scenarios at
    // least one host must record kills or meaningful degradation beyond
    // the steady baseline.
    let catalog = catalog::all(run_len(), dram());
    let steady: f64 = run_fleet(1, &catalog[0])
        .iter()
        .map(|o| o.total_degradation)
        .sum();
    let mut any_worse = false;
    for scenario in &catalog[1..] {
        let total: f64 = run_fleet(1, scenario)
            .iter()
            .map(|o| o.total_degradation)
            .sum();
        if total > steady {
            any_worse = true;
        }
    }
    assert!(
        any_worse,
        "no adversarial scenario degraded beyond steady ({steady})"
    );
}
