//! Seed-stability regression tests for the parallel fleet runner.
//!
//! The determinism contract the repro stands on: a fleet experiment is a
//! pure function of its experiment seed. Same seed ⇒ bit-identical
//! `FleetSummary` across runs, and a parallel run (`jobs=4`) is
//! bit-identical to the sequential one (`jobs=1`), because per-host
//! seeds derive from `(experiment_seed, host_index)` and results are
//! reduced in host-index order.

use tmo::fleet::{host_savings, summarize, FleetSummary, HostSavings};
use tmo::prelude::*;
use tmo::runner::FleetRunner;
use tmo_repro::{tmo, tmo_workload};

const FLEET_HOSTS: usize = 6;

/// A small heterogeneous fleet, cheap enough to run several times in
/// one test binary: per-host workload and backend vary with the index.
fn run_fleet(jobs: usize, experiment_seed: u64) -> (Vec<HostSavings>, FleetSummary) {
    let runner = FleetRunner::new(jobs);
    let hosts = runner.run_seeded(experiment_seed, FLEET_HOSTS, |host| {
        let server = ByteSize::from_mib(128);
        let swap = if host.index % 2 == 0 {
            SwapKind::Zswap {
                capacity_fraction: 0.3,
                allocator: ZswapAllocator::Zsmalloc,
            }
        } else {
            SwapKind::Ssd(SsdModel::C)
        };
        let mut machine = Machine::new(MachineConfig {
            dram: server,
            swap,
            seed: host.seed,
            ..MachineConfig::default()
        });
        let profile = if host.index < 3 {
            tmo_workload::apps::feed()
        } else {
            tmo_workload::apps::cache_a()
        };
        machine.add_container(&profile.with_mem_total(server.mul_f64(0.5)));
        let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(40.0));
        rt.run(SimDuration::from_mins(2));
        host_savings(rt.machine())
    });
    let summary = summarize(&hosts);
    (hosts, summary)
}

/// Bitwise equality for the f64 aggregates — `==` would also accept
/// `0.0 == -0.0`, which is weaker than the contract we promise.
fn assert_bit_identical(a: &FleetSummary, b: &FleetSummary) {
    assert_eq!(a.total_fraction.to_bits(), b.total_fraction.to_bits());
    assert_eq!(a.workload_fraction.to_bits(), b.workload_fraction.to_bits());
    assert_eq!(
        a.datacenter_tax_fraction.to_bits(),
        b.datacenter_tax_fraction.to_bits()
    );
    assert_eq!(
        a.microservice_tax_fraction.to_bits(),
        b.microservice_tax_fraction.to_bits()
    );
    assert_eq!(a.hosts, b.hosts);
}

#[test]
fn same_seed_same_summary_across_runs() {
    let (hosts_a, summary_a) = run_fleet(2, 7001);
    let (hosts_b, summary_b) = run_fleet(2, 7001);
    assert_eq!(hosts_a, hosts_b, "per-host savings must be reproducible");
    assert_bit_identical(&summary_a, &summary_b);
}

#[test]
fn parallel_jobs4_bit_identical_to_sequential_jobs1() {
    let (hosts_seq, summary_seq) = run_fleet(1, 7002);
    let (hosts_par, summary_par) = run_fleet(4, 7002);
    assert_eq!(
        hosts_seq, hosts_par,
        "sharding must not change any host's result"
    );
    assert_bit_identical(&summary_seq, &summary_par);
    // The fleet actually did something; we are not comparing zeros.
    assert!(summary_seq.total_fraction > 0.0);
    assert_eq!(summary_seq.hosts, FLEET_HOSTS);
}

#[test]
fn different_experiment_seeds_diverge() {
    let (hosts_a, _) = run_fleet(4, 7003);
    let (hosts_b, _) = run_fleet(4, 7004);
    assert_ne!(
        hosts_a, hosts_b,
        "the experiment seed must actually drive the simulation"
    );
}

/// Satellite of the shard-chunked runner: a fleet three orders of
/// magnitude larger than the 6-host smoke above, swept across worker
/// counts that straddle the shard plan's interesting regimes (1 = the
/// inline path, 3 = uneven shard/worker ratio, 8 = more workers than a
/// small machine has cores). `exact()` bypasses the core clamp so the
/// real multi-worker merge path runs everywhere, including CI's
/// single-core boxes. Promoted to a hard release-mode gate in
/// `scripts/ci.sh`.
#[test]
fn thousand_host_fleet_is_bit_identical_across_jobs() {
    const SWEEP_HOSTS: usize = 1_000;
    const SWEEP_SEED: u64 = 7100;
    let run = |jobs: usize| {
        let (hosts, stats) = FleetRunner::exact(jobs)
            .try_run_seeded_sharded(
                SWEEP_SEED,
                SWEEP_HOSTS,
                tmo_experiments::ext_paper_scale::run_host,
            )
            .expect("scaling hosts are fault-free");
        let summary = summarize(&hosts);
        (hosts, summary, stats)
    };
    let (hosts_base, summary_base, _) = run(1);
    assert_eq!(hosts_base.len(), SWEEP_HOSTS);
    assert!(
        summary_base.total_fraction > 0.0,
        "fleet must actually save"
    );
    for jobs in [3usize, 8] {
        let (hosts, summary, stats) = run(jobs);
        assert_eq!(
            hosts_base, hosts,
            "jobs={jobs} changed a host result at 1k-host scale"
        );
        assert_bit_identical(&summary_base, &summary);
        assert_eq!(stats.jobs, jobs, "exact() must not clamp");
        assert!(
            stats.shards > 1,
            "a 1k-host fleet must actually be chunked (got {} shard)",
            stats.shards
        );
    }
}

#[test]
fn host_seed_mapping_is_stable_and_documented() {
    // The seed→host mapping is part of the public contract (EXPERIMENTS
    // .md documents it): host i runs with derive_host_seed(seed, i).
    for index in 0..FLEET_HOSTS {
        assert_eq!(
            FleetRunner::host_seed(7005, index),
            tmo_repro::tmo_sim::derive_host_seed(7005, index as u64),
        );
    }
    // Pinned values: changing the derivation silently would reseed every
    // experiment in the repo, so lock it down.
    assert_eq!(
        FleetRunner::host_seed(900, 0),
        tmo_repro::tmo_sim::derive_host_seed(900, 0)
    );
    assert_ne!(
        FleetRunner::host_seed(900, 0),
        FleetRunner::host_seed(900, 1)
    );
    assert_ne!(
        FleetRunner::host_seed(900, 0),
        FleetRunner::host_seed(901, 0)
    );
}
