//! Per-workload Senpai policies: the §3.3 future-work deployment where
//! batch workloads with relaxed SLOs run a more aggressive config than
//! latency-critical services — on the same host, under one runtime.
//!
//! ```text
//! cargo run --release --example policy_tiers
//! ```

use tmo::prelude::*;
use tmo_repro::{tmo, tmo_senpai};
use tmo_senpai::PolicyMap;

fn main() {
    let dram = ByteSize::from_mib(768);
    let mut machine = Machine::new(MachineConfig {
        dram,
        swap: SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        },
        seed: 21,
        ..MachineConfig::default()
    });

    // Three workloads, three SLO classes.
    let web = machine.add_container_with(
        &apps::web().with_mem_total(ByteSize::from_mib(192)),
        ContainerConfig {
            web: Some(WebServerConfig::default()),
            ..ContainerConfig::default()
        },
    );
    let feed = machine.add_container(&apps::feed().with_mem_total(ByteSize::from_mib(192)));
    let mut batch = apps::analytics().with_mem_total(ByteSize::from_mib(192));
    batch.name = "Batch".to_string();
    let batch_id = machine.add_container(&batch);

    // One policy map: production defaults, a cautious override for Web,
    // an aggressive one for the batch tier.
    let policies = PolicyMap::new(SenpaiConfig::accelerated(20.0))
        .with_policy(
            "Web",
            SenpaiConfig {
                psi_threshold: 0.0005, // half the production tolerance
                ..SenpaiConfig::accelerated(20.0)
            },
        )
        .with_policy(
            "Batch",
            SenpaiConfig {
                psi_threshold: 0.01, // 10x the production tolerance
                io_threshold: 0.05,
                ..SenpaiConfig::accelerated(40.0)
            },
        );

    let mut rt = TmoRuntime::with_senpai_policies(machine, policies);
    println!("three SLO classes under one runtime (8 simulated minutes):\n");
    for minute in 1..=8u64 {
        rt.run(SimDuration::from_mins(1));
        let m = rt.machine();
        println!(
            "t+{minute}min  Web {:5.1}%  Feed {:5.1}%  Batch {:5.1}%   (saved of each footprint)",
            m.savings_fraction(web) * 100.0,
            m.savings_fraction(feed) * 100.0,
            m.savings_fraction(batch_id) * 100.0,
        );
    }
    let m = rt.machine();
    let rps = m.container(web).web().expect("web model").rps();
    println!(
        "\nWeb held {rps:.0} RPS behind its cautious policy while the batch tier,\n\
         free to run at 10x the pressure, gave up the most memory — the\n\
         per-SLO deployment §3.3 describes as future work."
    );
}
