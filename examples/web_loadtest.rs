//! Web load test: an A/B comparison of offload backends on a
//! memory-bound Web host — the Figure 11/12 scenario as a runnable
//! example.
//!
//! ```text
//! cargo run --release --example web_loadtest
//! ```

use tmo::prelude::*;
use tmo_repro::tmo;

/// Runs one tier and reports the RPS trajectory.
fn run_tier(label: &str, swap: SwapKind, senpai: bool) -> (f64, f64, f64) {
    let dram = ByteSize::from_mib(512);
    let mut machine = Machine::new(MachineConfig {
        dram,
        swap,
        seed: 7,
        ..MachineConfig::default()
    });
    // Web's memory profile (§4.2): the file cache loads up front, anon
    // arrives lazily with traffic, and the total slightly exceeds DRAM.
    let profile = apps::web().with_mem_total(dram.mul_f64(1.05));
    let duration = SimDuration::from_mins(6);
    let growth = profile
        .anon_bytes()
        .mul_f64(0.9 / (duration.as_secs_f64() * 0.6));
    machine.add_container_with(
        &profile,
        ContainerConfig {
            web: Some(WebServerConfig::default()),
            anon_growth: Some(growth),
            anon_preload_fraction: 0.1,
            ..ContainerConfig::default()
        },
    );
    let mut rt = if senpai {
        TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(20.0))
    } else {
        TmoRuntime::without_controller(machine)
    };
    rt.run(duration);
    let m = rt.machine();
    let rec = m.recorder();
    let rps = rec.series("Web.rps").expect("recorded");
    let horizon = m.now().as_secs_f64();
    let early = rps.mean_between(0.0, horizon * 0.3);
    let late = rps.mean_between(horizon * 0.7, horizon);
    let resident = rec
        .series("Web.resident_mib")
        .and_then(|s| s.last())
        .unwrap_or(0.0);
    println!(
        "{label:<28} early RPS {early:6.0}   late RPS {late:6.0}   final resident {resident:6.0} MiB"
    );
    (early, late, resident)
}

fn main() {
    println!("Web on a memory-bound 512 MiB host, three tiers (6 simulated minutes):\n");
    let (_, base_late, base_res) = run_tier("baseline (no offload)", SwapKind::None, false);
    let (_, ssd_late, ssd_res) = run_tier("TMO, SSD model C", SwapKind::Ssd(SsdModel::C), true);
    let (_, z_late, z_res) = run_tier(
        "TMO, zswap (zsmalloc)",
        SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        },
        true,
    );

    println!();
    println!(
        "late-RPS vs baseline:  SSD {:+.0}%   zswap {:+.0}%",
        (ssd_late / base_late - 1.0) * 100.0,
        (z_late / base_late - 1.0) * 100.0
    );
    println!(
        "resident vs baseline:  SSD {:+.1}%   zswap {:+.1}%",
        (ssd_res / base_res - 1.0) * 100.0,
        (z_res / base_res - 1.0) * 100.0
    );
    println!(
        "\nAs in the paper's Figure 11: the baseline self-throttles once\n\
         memory-bound, while TMO offloading eliminates the RPS decay and\n\
         trims resident memory — more so on zswap, since Web's data\n\
         compresses 4:1 and zswap faults cost ~40us instead of ~1ms."
    );
}
