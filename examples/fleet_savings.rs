//! Fleet savings: run a small fleet of hosts — each with a workload and
//! the two memory-tax sidecars — under TMO and aggregate savings the way
//! the paper's headline numbers (20–32% fleet-wide) are computed.
//!
//! ```text
//! cargo run --release --example fleet_savings
//! ```

use tmo::fleet::{host_savings, summarize, HostSavings};
use tmo::prelude::*;
use tmo_repro::tmo;

/// Provisions and runs one fleet host: a primary workload at ~45% of
/// DRAM plus datacenter and microservice tax sidecars.
fn run_host(workload: &AppProfile, seed: u64) -> HostSavings {
    let server = ByteSize::from_mib(512);
    let mut machine = Machine::new(MachineConfig {
        dram: server,
        swap: SwapKind::Zswap {
            capacity_fraction: 0.25,
            allocator: ZswapAllocator::Zsmalloc,
        },
        seed,
        ..MachineConfig::default()
    });
    machine.add_container(&workload.with_mem_total(server.mul_f64(0.45)));
    machine.add_container_with(
        &tax::datacenter_tax(server),
        ContainerConfig {
            relaxed: true,
            ..ContainerConfig::default()
        },
    );
    machine.add_container_with(
        &tax::microservice_tax(server),
        ContainerConfig {
            relaxed: true,
            ..ContainerConfig::default()
        },
    );
    let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(30.0));
    rt.run(SimDuration::from_mins(5));
    host_savings(rt.machine())
}

fn main() {
    let workloads = [
        apps::feed(),
        apps::ads_a(),
        apps::cache_a(),
        apps::warehouse(),
        apps::analytics(),
        apps::ads_c(),
    ];
    println!(
        "running {} hosts (5 simulated minutes each)...\n",
        workloads.len()
    );

    let mut hosts = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        let savings = run_host(w, 1000 + i as u64);
        println!(
            "host {i} ({:<10}): workload {:5.1} MiB, dc-tax {:5.1} MiB, \
             micro-tax {:4.1} MiB  → {:4.1}% of server",
            w.name,
            savings.workload_saved.as_mib(),
            savings.datacenter_tax_saved.as_mib(),
            savings.microservice_tax_saved.as_mib(),
            savings.total_fraction() * 100.0,
        );
        hosts.push(savings);
    }

    let fleet = summarize(&hosts);
    println!(
        "\nfleet mean over {} hosts:\n  workload savings     {:5.1}% of server memory (paper: 7-19% of app memory)\n  datacenter-tax       {:5.1}% (paper: 9%)\n  microservice-tax     {:5.1}% (paper: 4%)\n  total                {:5.1}% (paper headline: 20-32% incl. larger app share)",
        fleet.hosts,
        fleet.workload_fraction * 100.0,
        fleet.datacenter_tax_fraction * 100.0,
        fleet.microservice_tax_fraction * 100.0,
        fleet.total_fraction * 100.0,
    );
}
