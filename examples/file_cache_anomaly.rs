//! The §5.1 deployment anecdote: "TMO helped detect that an application
//! unexpectedly consumed a large amount of file cache due to its
//! repeated execution of a self-extracting binary ... We changed the
//! application to extract the binary ahead of time, which resulted in
//! 70% memory savings for the application!"
//!
//! This example replays the story: the buggy variant churns write-once
//! file pages; TMO's per-cgroup accounting makes the anomaly obvious
//! (huge file cache, no refaults); file-only Senpai contains it; and the
//! fixed variant shows the savings.
//!
//! ```text
//! cargo run --release --example file_cache_anomaly
//! ```

use tmo::prelude::*;
use tmo_mm::render::render_memory_stat;
use tmo_repro::{tmo, tmo_mm};

fn run_variant(buggy: bool, senpai: bool) -> (f64, f64, u64) {
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(512),
        seed: 51,
        ..MachineConfig::default()
    });
    let id = machine.add_container_with(
        &apps::analytics().with_mem_total(ByteSize::from_mib(96)),
        ContainerConfig {
            file_churn: buggy.then(|| ByteSize::from_mib(1)), // 1 MiB/s of junk
            ..ContainerConfig::default()
        },
    );
    let mut rt = if senpai {
        TmoRuntime::with_senpai(
            machine,
            SenpaiConfig {
                file_only: true,
                ..SenpaiConfig::accelerated(80.0)
            },
        )
    } else {
        TmoRuntime::without_controller(machine)
    };
    rt.run(SimDuration::from_mins(4));
    let m = rt.machine();
    let stat = m.mm().cgroup_stat(m.container(id).cgroup());
    let page = m.config().page_size;
    (
        stat.resident().to_bytes(page).as_mib(),
        stat.file_resident.to_bytes(page).as_mib(),
        stat.refaults_total,
    )
}

fn main() {
    println!("the self-extracting-binary anomaly (4 simulated minutes each):\n");

    let (buggy_res, buggy_file, buggy_ref) = run_variant(true, false);
    println!(
        "buggy, no TMO:      resident {buggy_res:6.0} MiB  file cache {buggy_file:6.0} MiB  \
         refaults {buggy_ref}"
    );
    println!(
        "  -> the anomaly signature TMO's observability exposes: a file cache\n\
         far beyond the footprint with ~zero refaults (nothing is re-read)\n"
    );

    let (contained_res, contained_file, _) = run_variant(true, true);
    println!(
        "buggy, file-only TMO: resident {contained_res:4.0} MiB  file cache {contained_file:6.0} MiB"
    );
    println!("  -> Senpai continuously trims the never-read pages; the leak is contained\n");

    let (fixed_res, fixed_file, _) = run_variant(false, true);
    println!("fixed + TMO:        resident {fixed_res:6.0} MiB  file cache {fixed_file:6.0} MiB");
    let saved = 1.0 - fixed_res / buggy_res.max(1.0);
    println!(
        "\nfixing the extraction saved {:.0}% of the buggy variant's memory\n\
         (the paper's deployment reported 70%)",
        saved * 100.0
    );

    // Show the memory.stat view an operator would have diagnosed from.
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(512),
        seed: 52,
        ..MachineConfig::default()
    });
    let id = machine.add_container_with(
        &apps::analytics().with_mem_total(ByteSize::from_mib(96)),
        ContainerConfig {
            file_churn: Some(ByteSize::from_mib(1)),
            ..ContainerConfig::default()
        },
    );
    machine.run(SimDuration::from_mins(2));
    println!("\nmemory.stat of the buggy container after two minutes:");
    let stat = machine.mm().cgroup_stat(machine.container(id).cgroup());
    for line in render_memory_stat(&stat, machine.config().page_size).lines() {
        println!("  {line}");
    }
}
