//! Quickstart: run one application under TMO and watch Senpai find its
//! cold memory.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tmo::prelude::*;
use tmo_repro::tmo;

fn main() {
    // A 1 GiB host with a zswap compressed-memory pool as the offload
    // backend (30% of DRAM, zsmalloc allocator — the production choice).
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_gib(1),
        swap: SwapKind::Zswap {
            capacity_fraction: 0.3,
            allocator: ZswapAllocator::Zsmalloc,
        },
        ..MachineConfig::default()
    });

    // The Feed profile from the paper's Figure 2: 30% of its memory is
    // cold past five minutes.
    let profile = apps::feed().with_mem_total(ByteSize::from_mib(512));
    let id = machine.add_container(&profile);
    println!("workload: {profile}");

    // Close the loop with Senpai. The `accelerated` config compresses
    // the paper's hours-long convergence into simulated minutes.
    let mut runtime = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(20.0));

    for minute in 1..=8u64 {
        runtime.run(SimDuration::from_mins(1));
        let m = runtime.machine();
        let stat = m.mm().cgroup_stat(m.container(id).cgroup());
        let psi = m.container(id).psi();
        println!(
            "t+{minute:2}min  resident {:7.1} MiB  offloaded {:6.1} MiB  \
             saved {:4.1}%  mem-PSI {:.3}%  zswap pool {:5.1} MiB",
            stat.resident().to_bytes(m.config().page_size).as_mib(),
            stat.anon_offloaded.to_bytes(m.config().page_size).as_mib(),
            m.savings_fraction(id) * 100.0,
            psi.some_avg10(Resource::Memory) * 100.0,
            m.mm().global_stat().zswap_pool_bytes.as_mib(),
        );
    }

    let m = runtime.machine();
    println!(
        "\nfinal: {:.1}% of Feed's resident memory offloaded with memory \
         pressure held near Senpai's 0.1% threshold",
        m.savings_fraction(id) * 100.0
    );
    println!(
        "kernel view (/proc/pressure/memory equivalent):\n{}",
        tmo_psi::render_pressure_file(&m.container(id).psi().snapshot(Resource::Memory))
    );
}

use tmo_repro::tmo_psi;
