//! PSI monitor: watch a container's `/proc/pressure`-equivalent files
//! evolve as memory is taken away — the observability use case of §3.2.4
//! (root-causing SLO violations from pressure metrics).
//!
//! ```text
//! cargo run --example psi_monitor
//! ```

use tmo::prelude::*;
use tmo_psi::render_pressure_file;
use tmo_repro::{tmo, tmo_psi};

fn main() {
    let mut machine = Machine::new(MachineConfig {
        dram: ByteSize::from_mib(512),
        swap: SwapKind::Ssd(SsdModel::B), // the slow SSD of Figure 12
        seed: 3,
        ..MachineConfig::default()
    });
    let id = machine.add_container(&apps::cache_b().with_mem_total(ByteSize::from_mib(256)));

    println!("Cache B (81% of memory active within 5 min) on a slow-SSD host.\n");
    println!("phase 1: undisturbed — no pressure accumulates");
    machine.run(SimDuration::from_secs(30));
    print_pressure(&machine, id);

    // Aggressively reclaim a third of the container — far past its cold
    // tail — and watch both pressure files light up.
    println!("phase 2: force-reclaim 85 MiB (way past the 19% cold tail)");
    machine.reclaim(id, ByteSize::from_mib(85));
    machine.run(SimDuration::from_secs(30));
    print_pressure(&machine, id);

    println!("phase 3: let the workingset fault back in and settle");
    machine.run(SimDuration::from_mins(3));
    print_pressure(&machine, id);

    let stat = machine.mm().cgroup_stat(machine.container(id).cgroup());
    println!(
        "cumulative: {} swap-ins, {} refaults, {} swap-outs — every one of those\n\
         stalls is what the PSI totals above are made of",
        stat.swapins_total, stat.refaults_total, stat.swapouts_total
    );
}

fn print_pressure(machine: &Machine, id: ContainerId) {
    let psi = machine.container(id).psi();
    for resource in [Resource::Memory, Resource::Io, Resource::Cpu] {
        let rendered = render_pressure_file(&psi.snapshot(resource));
        println!("  /proc/pressure/{resource}:");
        for line in rendered.lines() {
            println!("    {line}");
        }
    }
    println!();
}
