//! Tiered hierarchy + pressure-based OOM killing: the §5.2 future-work
//! backend and the §3.2.4 oomd policy, together on one host.
//!
//! ```text
//! cargo run --release --example tiered_hierarchy
//! ```

use tmo::prelude::*;
use tmo_repro::{tmo, tmo_senpai};
use tmo_senpai::{OomdConfig, OomdMonitor};

fn main() {
    let dram = ByteSize::from_mib(512);
    let mut machine = Machine::new(MachineConfig {
        dram,
        // The §5.2 hierarchy: a small zswap pool over an SSD, with idle
        // compressed pages demoted after 45 s.
        swap: SwapKind::Tiered {
            zswap_fraction: 0.08,
            allocator: ZswapAllocator::Zsmalloc,
            ssd: SsdModel::E,
            demote_after: SimDuration::from_secs(45),
            min_compress_ratio: 2.0,
        },
        seed: 9,
        ..MachineConfig::default()
    });
    // A compressible workload and a quantized-model workload share the
    // host; the hierarchy routes their pages to the right tier
    // automatically.
    let feed = machine.add_container(&apps::feed().with_mem_total(dram.mul_f64(0.35)));
    let ml = machine.add_container(&apps::ml().with_mem_total(dram.mul_f64(0.35)));

    let mut rt = TmoRuntime::with_senpai(machine, SenpaiConfig::accelerated(25.0));
    let mut oomd = OomdMonitor::new(OomdConfig::default());

    println!("mixed host under the tiered hierarchy (6 simulated minutes):\n");
    for minute in 1..=6u64 {
        rt.run(SimDuration::from_mins(1));
        // oomd watches `full` pressure alongside Senpai's `some` loop.
        let m = rt.machine();
        for (i, id) in [feed, ml].into_iter().enumerate() {
            let full = m.container(id).psi().full_avg10(Resource::Memory);
            if let Some(kill) = oomd.observe(i, full, SimDuration::from_mins(1)) {
                println!("  !! oomd would kill container {i}: {kill:?}");
            }
        }
        let g = m.mm().global_stat();
        println!(
            "t+{minute}min  feed saved {:4.1}%  ml saved {:4.1}%  pool {:4.1} MiB  free {:5.1} MiB",
            m.savings_fraction(feed) * 100.0,
            m.savings_fraction(ml) * 100.0,
            g.zswap_pool_bytes.as_mib(),
            g.free_bytes.as_mib(),
        );
    }

    let m = rt.machine();
    let swap = m.mm().swap_stats().expect("tiered backend");
    println!(
        "\nbackend: {} pages held, {:.1} MiB written to SSD (incl. demotions), \
         pool {:.1} MiB of DRAM",
        swap.pages_stored,
        swap.bytes_written.as_mib(),
        m.mm().global_stat().zswap_pool_bytes.as_mib(),
    );
    println!(
        "no oomd kills: {} — Senpai held both containers at mild `some` pressure,\n\
         far away from the sustained `full` stalls the kill policy watches for",
        oomd.kills().is_empty()
    );
}
